#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/rng.h"

namespace v6::net {
namespace {

TEST(PrefixTrie, EmptyMatchesNothing) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.longest_match(Ipv6Addr::must_parse("2001:db8::1")), nullptr);
  EXPECT_FALSE(trie.covers(Ipv6Addr()));
}

TEST(PrefixTrie, ExactAndLongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("2001:db8::/32"), 1);
  trie.insert(Prefix::must_parse("2001:db8:1::/48"), 2);

  EXPECT_EQ(*trie.longest_match(Ipv6Addr::must_parse("2001:db8::1")), 1);
  EXPECT_EQ(*trie.longest_match(Ipv6Addr::must_parse("2001:db8:1::1")), 2);
  EXPECT_EQ(trie.longest_match(Ipv6Addr::must_parse("2001:db9::1")), nullptr);

  EXPECT_EQ(*trie.find(Prefix::must_parse("2001:db8::/32")), 1);
  EXPECT_EQ(trie.find(Prefix::must_parse("2001:db8::/33")), nullptr);
}

TEST(PrefixTrie, MatchedLengthReported) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("2001::/16"), 1);
  trie.insert(Prefix::must_parse("2001:db8::/32"), 2);
  int len = -1;
  ASSERT_NE(trie.longest_match(Ipv6Addr::must_parse("2001:db8::1"), len),
            nullptr);
  EXPECT_EQ(len, 32);
  ASSERT_NE(trie.longest_match(Ipv6Addr::must_parse("2001:1::1"), len),
            nullptr);
  EXPECT_EQ(len, 16);
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("::/0"), 42);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*trie.longest_match(Ipv6Addr(rng(), rng())), 42);
  }
}

TEST(PrefixTrie, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("2001::/16"), 1);
  trie.insert(Prefix::must_parse("2001::/16"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(Prefix::must_parse("2001::/16")), 2);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("2001:db8::1/128"), 7);
  EXPECT_EQ(*trie.longest_match(Ipv6Addr::must_parse("2001:db8::1")), 7);
  EXPECT_EQ(trie.longest_match(Ipv6Addr::must_parse("2001:db8::2")), nullptr);
}

TEST(PrefixTrie, ForEachVisitsAllInsertions) {
  PrefixTrie<int> trie;
  const std::vector<std::pair<const char*, int>> entries = {
      {"2001:db8::/32", 1},
      {"2001:db8:1::/48", 2},
      {"fe80::/10", 3},
      {"::/0", 4},
      {"2600:9000::/28", 5},
  };
  for (const auto& [text, value] : entries) {
    trie.insert(Prefix::must_parse(text), value);
  }
  std::vector<std::pair<Prefix, int>> seen;
  trie.for_each([&](const Prefix& p, const int& v) { seen.emplace_back(p, v); });
  ASSERT_EQ(seen.size(), entries.size());
  for (const auto& [text, value] : entries) {
    const Prefix p = Prefix::must_parse(text);
    const auto it = std::find_if(seen.begin(), seen.end(), [&](const auto& e) {
      return e.first == p;
    });
    ASSERT_NE(it, seen.end()) << text;
    EXPECT_EQ(it->second, value) << text;
  }
}

/// Property test: the trie agrees with a brute-force longest-prefix scan
/// across random prefix sets and random probes.
TEST(PrefixTrie, AgreesWithBruteForce) {
  Rng rng(101);
  for (int round = 0; round < 20; ++round) {
    PrefixTrie<int> trie;
    std::vector<std::pair<Prefix, int>> prefixes;
    for (int i = 0; i < 200; ++i) {
      const Prefix p(Ipv6Addr(rng(), rng()), static_cast<int>(rng() % 129));
      // Skip duplicates: insert() overwrites, brute force must mirror it.
      const auto dup =
          std::find_if(prefixes.begin(), prefixes.end(),
                       [&](const auto& e) { return e.first == p; });
      if (dup != prefixes.end()) {
        dup->second = i;
      } else {
        prefixes.emplace_back(p, i);
      }
      trie.insert(p, i);
    }
    for (int probe = 0; probe < 200; ++probe) {
      // Half the probes target stored prefixes to guarantee matches.
      Ipv6Addr addr(rng(), rng());
      if (probe % 2 == 0) {
        const Prefix& base = prefixes[probe % prefixes.size()].first;
        addr = random_in_prefix(rng, base);
      }
      const int* got = trie.longest_match(addr);
      // Brute force.
      const std::pair<Prefix, int>* best = nullptr;
      for (const auto& entry : prefixes) {
        if (!entry.first.contains(addr)) continue;
        if (best == nullptr ||
            entry.first.length() > best->first.length()) {
          best = &entry;
        }
      }
      if (best == nullptr) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, best->second);
      }
    }
  }
}

}  // namespace
}  // namespace v6::net
