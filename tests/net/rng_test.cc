#include "net/rng.h"

#include <gtest/gtest.h>

namespace v6::net {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Rng, DerivedSeedsAreIndependentPerTag) {
  EXPECT_NE(derive_seed(1, 1), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 1), derive_seed(2, 1));
  EXPECT_EQ(derive_seed(1, 1), derive_seed(1, 1));
}

TEST(Rng, MakeRngReproducible) {
  Rng a = make_rng(99, 5);
  Rng b = make_rng(99, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = uniform_int(rng, 3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(chance(rng, 0.0));
    EXPECT_TRUE(chance(rng, 1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(4);
  int heads = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    if (chance(rng, 0.3)) ++heads;
  }
  const double rate = static_cast<double>(heads) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

class RandomInPrefixLengths : public ::testing::TestWithParam<int> {};

TEST_P(RandomInPrefixLengths, SampleStaysInPrefixAndVariesHostBits) {
  const int len = GetParam();
  Rng rng(50 + static_cast<std::uint64_t>(len));
  const Prefix p(Ipv6Addr(0x20010db800000000ULL, 0xabcdef0123456789ULL), len);
  Ipv6Addr first;
  bool varied = false;
  for (int i = 0; i < 64; ++i) {
    const Ipv6Addr sample = random_in_prefix(rng, p);
    EXPECT_TRUE(p.contains(sample));
    if (i == 0) {
      first = sample;
    } else if (sample != first) {
      varied = true;
    }
  }
  if (len < 120) {
    EXPECT_TRUE(varied) << "len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RandomInPrefixLengths,
                         ::testing::Values(0, 1, 16, 32, 48, 63, 64, 65, 80,
                                           96, 112, 127, 128));

}  // namespace
}  // namespace v6::net
