#include "net/service.h"

#include <gtest/gtest.h>

namespace v6::net {
namespace {

TEST(Service, BitsAreDistinct) {
  ServiceMask all = 0;
  for (const ProbeType t : kAllProbeTypes) {
    EXPECT_EQ(all & service_bit(t), 0) << to_string(t);
    all |= service_bit(t);
  }
  EXPECT_EQ(all, kAllServices);
}

TEST(Service, HasService) {
  const ServiceMask m =
      service_bit(ProbeType::kIcmp) | service_bit(ProbeType::kUdp53);
  EXPECT_TRUE(has_service(m, ProbeType::kIcmp));
  EXPECT_TRUE(has_service(m, ProbeType::kUdp53));
  EXPECT_FALSE(has_service(m, ProbeType::kTcp80));
  EXPECT_FALSE(has_service(kNoServices, ProbeType::kIcmp));
}

TEST(Service, PositiveReplyPerProbeType) {
  EXPECT_EQ(positive_reply(ProbeType::kIcmp), ProbeReply::kEchoReply);
  EXPECT_EQ(positive_reply(ProbeType::kTcp80), ProbeReply::kSynAck);
  EXPECT_EQ(positive_reply(ProbeType::kTcp443), ProbeReply::kSynAck);
  EXPECT_EQ(positive_reply(ProbeType::kUdp53), ProbeReply::kUdpReply);
}

TEST(Service, HitClassificationMatchesPaperRules) {
  // RST and Destination Unreachable are never hits (paper §4.1).
  for (const ProbeType t : kAllProbeTypes) {
    EXPECT_FALSE(is_hit(t, ProbeReply::kRst)) << to_string(t);
    EXPECT_FALSE(is_hit(t, ProbeReply::kDestUnreachable)) << to_string(t);
    EXPECT_FALSE(is_hit(t, ProbeReply::kTimeout)) << to_string(t);
    EXPECT_TRUE(is_hit(t, positive_reply(t))) << to_string(t);
  }
  // Cross-protocol replies fail verification.
  EXPECT_FALSE(is_hit(ProbeType::kIcmp, ProbeReply::kSynAck));
  EXPECT_FALSE(is_hit(ProbeType::kTcp80, ProbeReply::kEchoReply));
  EXPECT_FALSE(is_hit(ProbeType::kUdp53, ProbeReply::kSynAck));
}

TEST(Service, Names) {
  EXPECT_EQ(to_string(ProbeType::kIcmp), "ICMP");
  EXPECT_EQ(to_string(ProbeType::kTcp443), "TCP443");
  EXPECT_EQ(to_string(ProbeReply::kSynAck), "syn-ack");
  EXPECT_EQ(to_string(ProbeReply::kDestUnreachable), "dest-unreachable");
}

}  // namespace
}  // namespace v6::net
