// Unit tests for the exposition layer (src/obs/expo.h): the render →
// parse round trip, name sanitization, the strict line grammar of
// parse_exposition, the atomic status-file writer, and the plane's
// determinism contract — the non-`.wall` slice of the exposition is
// byte-identical across jobs counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/session.h"
#include "obs/expo.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "testutil/fixtures.h"

namespace v6::obs {
namespace {

TEST(Expo, RoundTripsEveryMetricKind) {
  Registry registry;
  registry.counter("scanner.packets").add(42);
  registry.gauge("service.depth").set(-7);
  registry.timer("pipeline.scan").add_raw(3, 1'500'000'000ULL);
  registry.histogram("transport.rtt_seconds").record(0.004);
  const std::string text = render_exposition(registry.snapshot());

  ExpoDoc doc;
  std::string error;
  ASSERT_TRUE(parse_exposition(text, &doc, &error)) << error;
  ASSERT_EQ(doc.families.size(), 4u);

  // Families arrive kind-grouped (counters, gauges, timers, histograms)
  // and name-sorted within each kind, with the dotted original in HELP.
  EXPECT_EQ(doc.families[0].name, "sos_scanner_packets");
  EXPECT_EQ(doc.families[0].type, "counter");
  EXPECT_EQ(doc.families[0].help, "scanner.packets");
  EXPECT_EQ(doc.families[1].name, "sos_service_depth");
  EXPECT_EQ(doc.families[1].type, "gauge");
  EXPECT_EQ(doc.families[2].type, "summary");
  EXPECT_EQ(doc.families[3].type, "summary");

  // Counter and gauge values survive the trip exactly.
  bool saw_counter = false, saw_gauge = false;
  for (const ExpoSample& s : doc.samples) {
    if (s.name == "sos_scanner_packets") {
      EXPECT_EQ(s.value, 42.0);
      saw_counter = true;
    }
    if (s.name == "sos_service_depth") {
      EXPECT_EQ(s.value, -7.0);
      saw_gauge = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(Expo, SummariesCarryQuantilesCountAndSum) {
  Registry registry;
  Histogram& h = registry.histogram("transport.rtt_seconds");
  for (int i = 1; i <= 100; ++i) h.record(0.001 * i);
  const std::string text = render_exposition(registry.snapshot());

  ExpoDoc doc;
  ASSERT_TRUE(parse_exposition(text, &doc));
  std::size_t quantiles = 0;
  double count = 0.0;
  for (const ExpoSample& s : doc.samples) {
    if (s.name == "sos_transport_rtt_seconds" && !s.labels.empty()) {
      ++quantiles;
    }
    if (s.name == "sos_transport_rtt_seconds_count") count = s.value;
  }
  EXPECT_EQ(quantiles, 4u);  // p50, p90, p99, max
  EXPECT_EQ(count, 100.0);
}

TEST(Expo, SanitizesNamesAndKeepsDottedOriginalInHelp) {
  Registry registry;
  registry.counter("transport.TCP80.packets").inc();
  const std::string text = render_exposition(registry.snapshot());
  EXPECT_NE(text.find("sos_transport_TCP80_packets 1\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP sos_transport_TCP80_packets sos metric "
                      "transport.TCP80.packets\n"),
            std::string::npos);
}

TEST(Expo, EmptyReportRendersEmptyDocument) {
  const std::string text = render_exposition(Report{});
  ExpoDoc doc;
  ASSERT_TRUE(parse_exposition(text, &doc));
  EXPECT_TRUE(doc.families.empty());
  EXPECT_TRUE(doc.samples.empty());
}

TEST(Expo, ParseRejectsMalformedLinesWithLineNumbers) {
  ExpoDoc doc;
  std::string error;

  EXPECT_FALSE(parse_exposition("metric_without_value\n", &doc, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;

  EXPECT_FALSE(parse_exposition("ok 1\nname not-a-number\n", &doc, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  EXPECT_FALSE(parse_exposition("# TYPE x bogus\n", &doc, &error));
  EXPECT_FALSE(parse_exposition("name{unterminated 3\n", &doc, &error));
  EXPECT_FALSE(parse_exposition("1leading_digit 3\n", &doc, &error));
}

TEST(Expo, WriteFileAtomicLeavesNoTempAndReplacesContent) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "v6_expo_test_status.prom";
  const std::string tmp = path.string() + ".tmp";
  std::remove(path.string().c_str());
  std::remove(tmp.c_str());

  ASSERT_TRUE(write_file_atomic(path.string(), "first 1\n"));
  ASSERT_TRUE(write_file_atomic(path.string(), "second 2\n"));
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "second 2\n");
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::remove(path.string().c_str());

  EXPECT_FALSE(write_file_atomic("/nonexistent-dir/status.prom", "x 1\n"));
}

// The plane's determinism contract at the document level: two sweeps
// differing only in jobs count render byte-identical expositions once
// the `.wall` family (host time, exempt by name) is dropped
// (docs/OBSERVABILITY.md "Live introspection").
TEST(Expo, ExpositionIsJobsInvariantOutsideWallFamily) {
  const auto& universe = v6::testutil::small_universe();
  std::vector<v6::net::Ipv6Addr> seeds;
  const auto hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 9) {
    seeds.push_back(hosts[i].addr);
  }
  const auto alias_list = v6::dealias::AliasList::published_from(universe);

  v6::experiment::PipelineConfig config;
  config.budget = 8'000;

  const auto drop_wall = [](Report report) {
    const auto erase_wall = [](auto& metrics) {
      for (auto it = metrics.begin(); it != metrics.end();) {
        const std::string& name = it->first;
        const bool wall =
            name.size() >= 5 && name.compare(name.size() - 5, 5, ".wall") == 0;
        it = wall ? metrics.erase(it) : std::next(it);
      }
    };
    erase_wall(report.counters);
    erase_wall(report.gauges);
    erase_wall(report.timers);
    erase_wall(report.histograms);
    return report;
  };

  const auto scrape = [&](unsigned jobs) {
    Telemetry telemetry;
    v6::experiment::ScanSession(universe, alias_list)
        .with_kind(v6::tga::TgaKind::kSixTree)
        .with_seeds(seeds)
        .with_config(config)
        .with_telemetry(&telemetry)
        .with_jobs(jobs)
        .sweep();
    return drop_wall(telemetry.registry().snapshot());
  };

  const Report one = scrape(1);
  const Report three = scrape(3);
  // Timer nanos are wall-side for non-wire timers; zero them so the
  // document compares only the deterministic fields (counts, and wire
  // timers bit-exactly).
  const auto mask_timers = [](Report report) {
    for (auto& [name, total] : report.timers) {
      if (name.find(".wire_seconds") == std::string::npos) total.nanos = 0;
    }
    return report;
  };
  EXPECT_EQ(render_exposition(mask_timers(one)),
            render_exposition(mask_timers(three)));
}

}  // namespace
}  // namespace v6::obs
