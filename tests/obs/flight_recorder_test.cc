// FlightRecorder tests (src/obs/flight_recorder.h): ring wrap-around,
// the freeze/thaw handshake, drop accounting, the JSONL dump's
// compatibility with obs::load_trace (the `sos report` front end), and
// concurrent emitters under the wait-free contract.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event.h"
#include "obs/flight_recorder.h"
#include "obs/trace_reader.h"

namespace v6::obs {
namespace {

Event message(const std::string& text) {
  Event e;
  e.kind = Event::Kind::kMessage;
  e.detail = text;
  return e;
}

Event counter(const std::string& path, std::uint64_t value) {
  Event e;
  e.kind = Event::Kind::kCounter;
  e.path = path;
  e.value = value;
  return e;
}

TEST(FlightRecorder, RetainsRecentEventsInOrder) {
  FlightRecorder::Options opts;
  opts.lanes = 1;
  opts.lane_capacity = 8;
  FlightRecorder recorder(opts);
  for (int i = 0; i < 5; ++i) {
    recorder.emit(counter("c", static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(recorder.recorded(), 5u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const std::vector<Event> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].value, i);
  }
}

TEST(FlightRecorder, RingOverwritesOldestFirst) {
  FlightRecorder::Options opts;
  opts.lanes = 1;
  opts.lane_capacity = 4;
  FlightRecorder recorder(opts);
  for (int i = 0; i < 10; ++i) {
    recorder.emit(counter("c", static_cast<std::uint64_t>(i)));
  }
  const std::vector<Event> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);  // capacity, not total
  // The ring keeps the most recent 4, oldest → newest.
  EXPECT_EQ(events[0].value, 6u);
  EXPECT_EQ(events[3].value, 9u);
}

TEST(FlightRecorder, FreezeDropsAndThawResumes) {
  FlightRecorder::Options opts;
  opts.lanes = 1;
  opts.lane_capacity = 8;
  FlightRecorder recorder(opts);
  recorder.emit(message("before"));
  recorder.freeze();
  EXPECT_TRUE(recorder.frozen());
  recorder.emit(message("while frozen"));
  EXPECT_EQ(recorder.dropped(), 1u);
  EXPECT_EQ(recorder.snapshot().size(), 1u);

  recorder.thaw();
  EXPECT_FALSE(recorder.frozen());
  recorder.emit(message("after"));
  EXPECT_EQ(recorder.snapshot().size(), 2u);
  recorder.thaw();
}

TEST(FlightRecorder, SnapshotLeavesRecorderFrozen) {
  FlightRecorder recorder;
  recorder.emit(message("x"));
  recorder.snapshot();
  EXPECT_TRUE(recorder.frozen());
}

// The dump must be a valid trace file: every line decodes through the
// independent reader, with no malformed or truncated lines — so a
// watchdog dump is `sos report`-able like any --trace output.
TEST(FlightRecorder, DumpIsLoadableTraceJsonl) {
  FlightRecorder::Options opts;
  opts.lanes = 2;
  opts.lane_capacity = 16;
  FlightRecorder recorder(opts);
  recorder.emit(counter("scanner.packets", 7));
  recorder.emit(message("hello \"quoted\" text\nwith newline"));
  Event probe;
  probe.kind = Event::Kind::kProbe;
  probe.path = "2001:db8::1";
  probe.detail = "ICMP->echo-reply";
  probe.at = 1.25;
  recorder.emit(probe);

  std::ostringstream dump;
  recorder.dump_jsonl(dump);

  std::istringstream in(dump.str());
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_EQ(stats.truncated, 0u);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, Event::Kind::kCounter);
  EXPECT_EQ(events[0].path, "scanner.packets");
  EXPECT_EQ(events[1].detail, "hello \"quoted\" text\nwith newline");
  EXPECT_EQ(events[2].kind, Event::Kind::kProbe);
}

// Wait-free contract under contention: every emit either lands in a
// ring or is counted as dropped — nothing blocks, nothing is lost
// silently, and the post-race snapshot still dumps as valid JSONL.
TEST(FlightRecorder, ConcurrentEmittersBalanceRecordedPlusDropped) {
  FlightRecorder::Options opts;
  opts.lanes = 4;
  opts.lane_capacity = 64;
  FlightRecorder recorder(opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.emit(counter("thread." + std::to_string(t),
                              static_cast<std::uint64_t>(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(recorder.recorded() + recorder.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(recorder.recorded(), 0u);

  std::ostringstream dump;
  recorder.dump_jsonl(dump);
  std::istringstream in(dump.str());
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_LE(events.size(), opts.lanes * opts.lane_capacity);
  EXPECT_GT(events.size(), 0u);
}

// Emitters racing an asynchronous freeze: the handshake guarantees the
// dump reads quiescent rings (no torn events) while emit stays
// wait-free on the loser side.
TEST(FlightRecorder, FreezeRacingEmittersYieldsParseableDump) {
  FlightRecorder::Options opts;
  opts.lanes = 2;
  opts.lane_capacity = 32;
  FlightRecorder recorder(opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&recorder, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        recorder.emit(counter("racer", i++));
      }
    });
  }
  // Freeze mid-stream, dump, thaw; repeat to shake out handshake bugs.
  for (int round = 0; round < 20; ++round) {
    std::ostringstream dump;
    recorder.dump_jsonl(dump);
    std::istringstream in(dump.str());
    std::vector<Event> events;
    const TraceLoadStats stats = load_trace(in, &events);
    EXPECT_EQ(stats.bad_lines, 0u);
    recorder.thaw();
  }
  stop.store(true);
  for (std::thread& t : emitters) t.join();
}

}  // namespace
}  // namespace v6::obs
