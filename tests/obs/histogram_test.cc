// Unit coverage for the Histogram metric (src/obs/histogram.h): bucket
// math, fixed-point units, quantile estimation bounds, merge semantics,
// registry/report integration, and the trace-detail encoding.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/registry.h"

namespace v6::obs {
namespace {

TEST(HistogramBuckets, ValuesLandInsideTheirBucketBounds) {
  const double values[] = {1e-9, 3.2e-7, 0.004, 0.05, 0.9999, 1.0,
                           1.5,  7.0,    1234.5, 8.5e9};
  for (const double v : values) {
    const int index = Histogram::bucket_index(v);
    ASSERT_GE(index, 0) << v;
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    EXPECT_GE(v, Histogram::bucket_lower(index)) << v;
    EXPECT_LT(v, Histogram::bucket_upper(index)) << v;
  }
}

TEST(HistogramBuckets, BucketsTileTheRangeContiguously) {
  for (int i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1))
        << i;
  }
}

TEST(HistogramBuckets, RelativeWidthIsBounded) {
  // Log-linear bucketing bounds the worst-case quantile error at
  // 1/kSubBuckets relative.
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const double lower = Histogram::bucket_lower(i);
    const double upper = Histogram::bucket_upper(i);
    EXPECT_LE((upper - lower) / lower, 1.0 / Histogram::kSubBuckets + 1e-12)
        << i;
  }
}

TEST(HistogramBuckets, OutOfRangeValuesClampToEdgeBuckets) {
  EXPECT_EQ(Histogram::bucket_index(1e-30), 0);
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kNumBuckets - 1);
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  Histogram h;
  h.record(0.010);
  h.record(0.020);
  h.record(0.300);
  const HistogramTotal t = h.total();
  EXPECT_EQ(t.count, 3u);
  EXPECT_EQ(t.zeros, 0u);
  EXPECT_EQ(t.sum_units, 330'000'000u);
  EXPECT_EQ(t.min_units, 10'000'000u);
  EXPECT_EQ(t.max_units, 300'000'000u);
  EXPECT_NEAR(t.mean(), 0.110, 1e-12);
}

TEST(Histogram, NonPositiveValuesCountAsZeros) {
  Histogram h;
  h.record(0.0);
  h.record(-1.0);
  h.record(0.5);
  const HistogramTotal t = h.total();
  EXPECT_EQ(t.count, 3u);
  EXPECT_EQ(t.zeros, 2u);
  EXPECT_EQ(t.min_units, 0u);
  EXPECT_EQ(t.quantile(0.5), 0.0);  // rank 2 of 3 is a zero
}

TEST(Histogram, QuantileEstimateIsWithinBucketError) {
  Histogram h;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 0.001 * i;  // 1ms .. 1s uniform
    values.push_back(v);
    h.record(v);
  }
  const HistogramTotal t = h.total();
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * 1000.0) - 1];
    const double estimate = t.quantile(q);
    EXPECT_GE(estimate, exact * (1.0 - 1e-9)) << q;
    EXPECT_LE(estimate, exact * (1.0 + 1.0 / Histogram::kSubBuckets) + 1e-9)
        << q;
  }
  // quantile(1.0) is exact: the tracked max, not a bucket bound.
  EXPECT_DOUBLE_EQ(t.quantile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 1.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  const HistogramTotal t = Histogram().total();
  EXPECT_EQ(t.count, 0u);
  EXPECT_EQ(t.quantile(0.5), 0.0);
  EXPECT_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.min(), 0.0);
}

TEST(Histogram, AddRawMergeEqualsCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 1; i <= 100; ++i) {
    const double v = 0.003 * i;
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  Histogram merged;
  merged.add_raw(a.total());
  merged.add_raw(b.total());
  EXPECT_EQ(merged.total(), combined.total());
}

TEST(Histogram, RegistrySnapshotAndMergeCarryHistograms) {
  Registry reg;
  reg.histogram("x.rtt").record(0.05);
  reg.histogram("x.rtt").record(0.07);
  const Report report = reg.snapshot();
  ASSERT_EQ(report.histograms.count("x.rtt"), 1u);
  EXPECT_EQ(report.histograms.at("x.rtt").count, 2u);

  Registry other;
  other.histogram("x.rtt").record(0.09);
  other.merge_from(reg);
  EXPECT_EQ(other.snapshot().histograms.at("x.rtt").count, 3u);

  Report folded;
  folded.merge_from(report);
  folded.merge_from(other.snapshot());
  EXPECT_EQ(folded.histograms.at("x.rtt").count, 5u);
}

TEST(Histogram, DetailEncodingRoundTripsBitExactly) {
  Histogram h;
  h.record(0.001);
  h.record(0.25);
  h.record(123.0);
  h.record(0.0);
  const HistogramTotal t = h.total();
  const std::string encoded = encode_histogram(t);
  HistogramTotal parsed;
  ASSERT_TRUE(parse_histogram(encoded, &parsed)) << encoded;
  EXPECT_EQ(parsed, t);

  // Empty histograms round-trip too (min_units is the sentinel max).
  const HistogramTotal empty = Histogram().total();
  HistogramTotal parsed_empty;
  ASSERT_TRUE(parse_histogram(encode_histogram(empty), &parsed_empty));
  EXPECT_EQ(parsed_empty, empty);
}

TEST(Histogram, DetailParserRejectsGarbage) {
  HistogramTotal t;
  EXPECT_FALSE(parse_histogram("", &t));
  EXPECT_FALSE(parse_histogram("c=1", &t));
  EXPECT_FALSE(parse_histogram("c=1;z=0;s=5;lo=1;hi=5;b=9999999:1", &t));
  EXPECT_FALSE(parse_histogram("c=x;z=0;s=0;lo=0;hi=0;b=", &t));
  EXPECT_FALSE(parse_histogram("c=1;z=0;s=0;lo=0;hi=0;b=1:", &t));
}

}  // namespace
}  // namespace v6::obs
