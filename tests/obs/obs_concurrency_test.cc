// Concurrency coverage for src/obs, run under the tsan preset
// (`ctest -L concurrency`): concurrent counter updates are exact,
// concurrent first-touch registration is safe, and spans on separate
// threads sharing one Telemetry + sink never tear.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/sinks.h"
#include "obs/telemetry.h"

namespace v6::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 20'000;

TEST(ObsConcurrency, CounterTotalsAreExact) {
  Registry reg;
  Counter& counter = reg.counter("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kItersPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
}

TEST(ObsConcurrency, ConcurrentRegistrationYieldsOneMetricPerName) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // All threads race to first-touch the same names; every thread
      // must land on the same Counter instance.
      for (int i = 0; i < 200; ++i) {
        reg.counter("metric." + std::to_string(i % 16)).inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Report report = reg.snapshot();
  ASSERT_EQ(report.counters.size(), 16u);
  std::uint64_t total = 0;
  for (const auto& [name, value] : report.counters) total += value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 200);
}

TEST(ObsConcurrency, ConcurrentTimersAreExact) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.timer("phase").record_seconds(1e-6);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(reg.timer("phase").count(),
            static_cast<std::uint64_t>(kThreads) * 1000);
}

TEST(ObsConcurrency, SpansOnSeparateThreadsShareOneSink) {
  // Threads open/close their own span stacks against a shared Telemetry
  // — stacks are thread-local, so paths never mix across threads, and
  // the MemorySink must absorb concurrent emits without tearing.
  Telemetry telemetry;
  MemorySink sink;
  telemetry.attach_sink(&sink);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      const std::string name = "worker" + std::to_string(t);
      for (int i = 0; i < 100; ++i) {
        Span outer(&telemetry, name);
        Span inner(&telemetry, "step");
        EXPECT_EQ(inner.path(), name + "/step");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(sink.size(), static_cast<std::size_t>(kThreads) * 200);
  // Per-name timer totals are exact.
  const Report report = telemetry.registry().snapshot();
  EXPECT_EQ(report.timers.at("step").count,
            static_cast<std::uint64_t>(kThreads) * 100);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(report.timers.at("worker" + std::to_string(t)).count, 100u);
  }
}

TEST(ObsConcurrency, HistogramTotalsAreExact) {
  // The lock-free histogram's relaxed adds and min/max CAS loops must
  // lose nothing under contention: count/sum/min/max and the bucket
  // tallies all come out exact.
  Registry reg;
  Histogram& hist = reg.histogram("shared.rtt");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Two distinct octaves per thread, plus thread-varied values so
        // min/max are contested.
        hist.record(t % 2 == 0 ? 0.001 * (t + 1) : 1.0 * (t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramTotal total = hist.total();
  EXPECT_EQ(total.count,
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(total.min_units, Histogram::to_units(0.001));
  EXPECT_EQ(total.max_units, Histogram::to_units(8.0));
  std::uint64_t bucketed = total.zeros;
  for (const auto& [index, tally] : total.buckets) bucketed += tally;
  EXPECT_EQ(bucketed, total.count);
}

TEST(ObsConcurrency, RegistryMergeRacesWithWriters) {
  // merge_from snapshots the source while writers are still adding;
  // the merged total must land between 0 and the final count, and the
  // combined "source remainder + merged" view must be exact afterwards.
  Registry source;
  Counter& counter = source.counter("c");
  std::thread writer([&counter] {
    for (int i = 0; i < kItersPerThread; ++i) counter.inc();
  });
  Registry target;
  target.merge_from(source);  // races with the writer — must be safe
  writer.join();
  target.merge_from(source);  // ...but this one sees the final value
  // Counters merge additively, so target now holds mid + final.
  const std::uint64_t merged = target.snapshot().counter_value("c");
  EXPECT_GE(merged, static_cast<std::uint64_t>(kItersPerThread));
  EXPECT_LE(merged, 2u * kItersPerThread);
}

}  // namespace
}  // namespace v6::obs
