// Unit coverage for the observability library (src/obs): metric
// primitives, registry snapshot/merge semantics, span nesting and path
// construction, sinks, and the pinned JSON-lines format.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/registry.h"
#include "obs/sinks.h"
#include "obs/telemetry.h"
#include "obs/trace_reader.h"

namespace v6::obs {
namespace {

// ---- Metric primitives ---------------------------------------------------

TEST(Counters, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counters, GaugeIsALevel) {
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
  g.set(0);
  EXPECT_EQ(g.value(), 0);
}

TEST(Counters, TimerStatAccumulatesNanos) {
  TimerStat t;
  t.record_seconds(0.5);
  t.record_seconds(1.5);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.nanos(), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(t.seconds(), 2.0);
}

TEST(Counters, TimerStatClampsNegativeDurations) {
  TimerStat t;
  t.record_seconds(-1.0);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_EQ(t.nanos(), 0u);
}

TEST(Counters, TimerStatAddRawMerges) {
  TimerStat t;
  t.record_seconds(1.0);
  t.add_raw(3, 500);
  EXPECT_EQ(t.count(), 4u);
  EXPECT_EQ(t.nanos(), 1'000'000'500u);
}

// ---- Registry ------------------------------------------------------------

TEST(Registry, SameNameSameAddress) {
  Registry reg;
  Counter& a = reg.counter("transport.ICMP.packets");
  Counter& b = reg.counter("transport.ICMP.packets");
  EXPECT_EQ(&a, &b);
  // Registering more metrics must not move existing ones (hot paths
  // cache the pointer).
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("transport.ICMP.packets"), &a);
}

TEST(Registry, SnapshotIsDeterministicAndComplete) {
  Registry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(-5);
  reg.timer("t").record_seconds(0.25);

  const Report report = reg.snapshot();
  ASSERT_EQ(report.counters.size(), 2u);
  // std::map: iteration (and therefore serialization) order is sorted.
  EXPECT_EQ(report.counters.begin()->first, "a");
  EXPECT_EQ(report.counter_value("a"), 1u);
  EXPECT_EQ(report.counter_value("b"), 2u);
  EXPECT_EQ(report.counter_value("missing"), 0u);
  EXPECT_EQ(report.gauges.at("g"), -5);
  EXPECT_EQ(report.timers.at("t").count, 1u);
  EXPECT_DOUBLE_EQ(report.timer_seconds("t"), 0.25);
  EXPECT_DOUBLE_EQ(report.timer_seconds("missing"), 0.0);
}

TEST(Registry, MergeFromAddsCountersAndTimersOverwritesGauges) {
  Registry parent;
  parent.counter("c").add(10);
  parent.gauge("g").set(1);
  parent.timer("t").record_seconds(1.0);

  Registry child;
  child.counter("c").add(5);
  child.counter("child_only").add(7);
  child.gauge("g").set(99);
  child.timer("t").record_seconds(2.0);

  parent.merge_from(child);
  const Report report = parent.snapshot();
  EXPECT_EQ(report.counter_value("c"), 15u);
  EXPECT_EQ(report.counter_value("child_only"), 7u);
  EXPECT_EQ(report.gauges.at("g"), 99);
  EXPECT_EQ(report.timers.at("t").count, 2u);
  EXPECT_DOUBLE_EQ(report.timer_seconds("t"), 3.0);
}

TEST(Registry, ReportMergeMatchesRegistryMerge) {
  Report a;
  a.counters["c"] = 1;
  a.gauges["g"] = 5;
  a.timers["t"] = TimerTotal{1, 100};
  Report b;
  b.counters["c"] = 2;
  b.gauges["g"] = -5;
  b.timers["t"] = TimerTotal{2, 200};

  a.merge_from(b);
  EXPECT_EQ(a.counters["c"], 3u);
  EXPECT_EQ(a.gauges["g"], -5);
  EXPECT_EQ(a.timers["t"].count, 3u);
  EXPECT_EQ(a.timers["t"].nanos, 300u);
}

// ---- Spans ---------------------------------------------------------------

TEST(Spans, NullTelemetryIsInert) {
  Span span(nullptr, "anything");
  EXPECT_TRUE(span.path().empty());
}

TEST(Spans, PathsNestWithinOneTelemetry) {
  Telemetry telemetry;
  {
    Span outer(&telemetry, "pipeline.run");
    EXPECT_EQ(outer.path(), "pipeline.run");
    {
      Span inner(&telemetry, "pipeline.scan");
      EXPECT_EQ(inner.path(), "pipeline.run/pipeline.scan");
    }
    // After inner closes, a new child nests under outer again.
    Span sibling(&telemetry, "pipeline.dealias");
    EXPECT_EQ(sibling.path(), "pipeline.run/pipeline.dealias");
  }
  // Timers are keyed by span *name*, so phase totals aggregate across
  // parents.
  const Report report = telemetry.registry().snapshot();
  EXPECT_EQ(report.timers.at("pipeline.run").count, 1u);
  EXPECT_EQ(report.timers.at("pipeline.scan").count, 1u);
  EXPECT_EQ(report.timers.at("pipeline.dealias").count, 1u);
}

TEST(Spans, SiblingTelemetriesDoNotNestIntoEachOther) {
  Telemetry a;
  Telemetry b;
  Span outer(&a, "outer");
  Span independent(&b, "inner");
  // b has no open span of its own, so its span is a root — a's open
  // span must not leak into its path.
  EXPECT_EQ(independent.path(), "inner");
}

TEST(Spans, ClosedSpansEmitEventsWithFullPath) {
  Telemetry telemetry;
  MemorySink sink;
  telemetry.attach_sink(&sink);
  {
    Span outer(&telemetry, "outer");
    Span inner(&telemetry, "inner");
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(events[0].kind, Event::Kind::kSpan);
  EXPECT_EQ(events[0].path, "outer/inner");
  EXPECT_EQ(events[1].path, "outer");
  EXPECT_GE(events[1].seconds, events[0].seconds);
}

TEST(Spans, NoSinkMeansNoEventsButTimersStillRecord) {
  Telemetry telemetry;
  { Span span(&telemetry, "quiet"); }
  EXPECT_EQ(telemetry.registry().snapshot().timers.at("quiet").count, 1u);
  EXPECT_FALSE(telemetry.tracing());
}

// ---- Sinks ---------------------------------------------------------------

TEST(Sinks, MemorySinkPreservesOrderAndReplays) {
  MemorySink source;
  for (int i = 0; i < 5; ++i) {
    Event event;
    event.kind = Event::Kind::kMessage;
    event.detail = "m" + std::to_string(i);
    source.emit(event);
  }
  ASSERT_EQ(source.size(), 5u);

  MemorySink target;
  source.replay_to(target);
  const auto replayed = target.events();
  ASSERT_EQ(replayed.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(replayed[static_cast<std::size_t>(i)].detail,
              "m" + std::to_string(i));
  }
  source.clear();
  EXPECT_EQ(source.size(), 0u);
}

// Golden pins on the JSON-lines format: docs/OBSERVABILITY.md documents
// these exact shapes, and offline tooling parses them.
TEST(Sinks, JsonLinesGoldenSpan) {
  Event event;
  event.kind = Event::Kind::kSpan;
  event.path = "tga:6Tree/pipeline.scan";
  event.at = 1.5;
  event.seconds = 0.25;
  EXPECT_EQ(JsonLinesSink::to_json(event),
            "{\"ev\":\"span\",\"path\":\"tga:6Tree/pipeline.scan\","
            "\"t0\":1.5,\"dur\":0.25}");
}

TEST(Sinks, JsonLinesGoldenCounterAndGauge) {
  Event counter;
  counter.kind = Event::Kind::kCounter;
  counter.path = "transport.ICMP.packets";
  counter.value = 12345;
  EXPECT_EQ(JsonLinesSink::to_json(counter),
            "{\"ev\":\"counter\",\"path\":\"transport.ICMP.packets\","
            "\"value\":12345}");

  Event gauge;
  gauge.kind = Event::Kind::kGauge;
  gauge.path = "pipeline.budget";
  gauge.value = static_cast<std::uint64_t>(-3);  // two's complement
  EXPECT_EQ(JsonLinesSink::to_json(gauge),
            "{\"ev\":\"gauge\",\"path\":\"pipeline.budget\",\"value\":-3}");
}

TEST(Sinks, JsonLinesGoldenProbeAndMessage) {
  Event probe;
  probe.kind = Event::Kind::kProbe;
  probe.path = "2001:db8::1";
  probe.detail = "ICMP->echo-reply";
  probe.at = 2.0;
  EXPECT_EQ(JsonLinesSink::to_json(probe),
            "{\"ev\":\"probe\",\"path\":\"2001:db8::1\","
            "\"detail\":\"ICMP->echo-reply\",\"t0\":2}");

  Event message;
  message.kind = Event::Kind::kMessage;
  message.detail = "hello";
  EXPECT_EQ(JsonLinesSink::to_json(message),
            "{\"ev\":\"message\",\"detail\":\"hello\"}");
}

TEST(Sinks, JsonLinesEscapesControlAndQuoteCharacters) {
  Event event;
  event.kind = Event::Kind::kMessage;
  event.detail = "a\"b\\c\nd\te\x01" "f\rg";
  EXPECT_EQ(JsonLinesSink::to_json(event),
            "{\"ev\":\"message\",\"detail\":"
            "\"a\\\"b\\\\c\\nd\\te\\u0001f\\rg\"}");
}

TEST(Sinks, JsonLinesEscapedOutputIsValidJsonAndRoundTrips) {
  // Quotes, backslashes, every control character, and non-ASCII UTF-8
  // must all serialize to strict-parseable JSON that decodes back to the
  // original bytes.
  std::string nasty;
  for (int c = 1; c < 0x20; ++c) nasty.push_back(static_cast<char>(c));
  nasty += "\"\\/ plain ";
  nasty += "\xC3\xA9\xE6\xBC\xA2";  // é + 漢 (UTF-8)
  Event event;
  event.kind = Event::Kind::kMessage;
  event.path = nasty;
  event.detail = nasty;
  const std::string line = JsonLinesSink::to_json(event);

  JsonValue doc;
  ASSERT_TRUE(json_parse(line, &doc)) << line;
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  const JsonValue* path = doc.find("path");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->string, nasty);
  const auto parsed = parse_trace_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->path, nasty);
  EXPECT_EQ(parsed->detail, nasty);
}

TEST(Sinks, JsonLinesSinkWritesOneLinePerEvent) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  EXPECT_TRUE(sink.ok());
  Event event;
  event.kind = Event::Kind::kMessage;
  event.detail = "x";
  sink.emit(event);
  sink.emit(event);
  sink.flush();
  EXPECT_EQ(out.str(),
            "{\"ev\":\"message\",\"detail\":\"x\"}\n"
            "{\"ev\":\"message\",\"detail\":\"x\"}\n");
}

TEST(Sinks, JsonLinesSinkReportsBadPath) {
  JsonLinesSink sink("/nonexistent-dir-for-sure/trace.jsonl");
  EXPECT_FALSE(sink.ok());
}

// ---- Telemetry -----------------------------------------------------------

TEST(Telemetry, EmitMetricsDumpsSortedWithPrefix) {
  Telemetry telemetry;
  telemetry.registry().counter("z").add(1);
  telemetry.registry().counter("a").add(2);
  telemetry.registry().gauge("g").set(-1);

  MemorySink sink;
  telemetry.attach_sink(&sink);
  telemetry.emit_metrics("final/");

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, Event::Kind::kCounter);
  EXPECT_EQ(events[0].path, "final/a");
  EXPECT_EQ(events[0].value, 2u);
  EXPECT_EQ(events[1].path, "final/z");
  EXPECT_EQ(events[2].kind, Event::Kind::kGauge);
  EXPECT_EQ(events[2].path, "final/g");
  EXPECT_EQ(static_cast<std::int64_t>(events[2].value), -1);
}

TEST(Telemetry, EmitMetricsWithoutSinkIsANoop) {
  Telemetry telemetry;
  telemetry.registry().counter("c").inc();
  telemetry.emit_metrics();  // must not crash
  EXPECT_FALSE(telemetry.tracing());
}

TEST(Telemetry, DetachingSinkStopsEvents) {
  Telemetry telemetry;
  MemorySink sink;
  telemetry.attach_sink(&sink);
  { Span span(&telemetry, "a"); }
  telemetry.attach_sink(nullptr);
  { Span span(&telemetry, "b"); }
  EXPECT_EQ(sink.size(), 1u);
  // Both spans still hit the registry.
  EXPECT_EQ(telemetry.registry().snapshot().timers.size(), 2u);
}

}  // namespace
}  // namespace v6::obs
