// Coverage for the trace-consumer half of src/obs: the strict JSON
// reader (trace_reader.h), the offline analyzer behind `sos report`
// (trace_analysis.h), the quantile JSON schema (quantiles.h), and the
// Chrome-trace exporter — whose output is validated with the in-repo
// strict parser, the same pattern fuzz_csv uses for CSV.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/histogram.h"
#include "obs/quantiles.h"
#include "obs/sinks.h"
#include "obs/telemetry.h"
#include "obs/trace_analysis.h"
#include "obs/trace_reader.h"

namespace v6::obs {
namespace {

// ---- Strict JSON parser --------------------------------------------------

TEST(JsonParse, AcceptsDocumentsOfEveryType) {
  JsonValue v;
  EXPECT_TRUE(json_parse("null", &v));
  EXPECT_EQ(v.type, JsonValue::Type::kNull);
  EXPECT_TRUE(json_parse("true", &v));
  EXPECT_TRUE(v.boolean);
  EXPECT_TRUE(json_parse("-12.5e2", &v));
  EXPECT_DOUBLE_EQ(v.number, -1250.0);
  EXPECT_TRUE(json_parse("\"a\\u0041\\n\"", &v));
  EXPECT_EQ(v.string, "aA\n");
  EXPECT_TRUE(json_parse("[1,[2,3],{}]", &v));
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_TRUE(json_parse(" {\"a\": [true], \"b\": \"x\"} ", &v));
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("c"), nullptr);
}

TEST(JsonParse, DecodesSurrogatePairsToUtf8) {
  JsonValue v;
  ASSERT_TRUE(json_parse("\"\\uD83D\\uDE00\"", &v));  // U+1F600
  EXPECT_EQ(v.string, "\xF0\x9F\x98\x80");
  EXPECT_FALSE(json_parse("\"\\uD83D\"", &v));   // lone high surrogate
  EXPECT_FALSE(json_parse("\"\\uDE00\"", &v));   // lone low surrogate
}

TEST(JsonParse, RejectsMalformedDocuments) {
  JsonValue v;
  const char* bad[] = {
      "",          "{",          "}",           "{\"a\":}",   "{\"a\" 1}",
      "[1,]",      "{,}",        "01",          "1.",         ".5",
      "+1",        "1e",         "nul",         "truex",      "\"unterminated",
      "\"bad\\q\"", "\"ctrl\n\"", "{\"a\":1} x", "[1] [2]",   "'single'",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(json_parse(text, &v)) << text;
  }
}

TEST(JsonParse, BoundsNestingDepth) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue v;
  EXPECT_FALSE(json_parse(deep, &v));
  std::string shallow(10, '[');
  shallow += "1";
  shallow += std::string(10, ']');
  EXPECT_TRUE(json_parse(shallow, &v));
}

// ---- Trace line round-trips ----------------------------------------------

TEST(TraceReader, EveryEventKindRoundTripsThroughToJson) {
  std::vector<Event> events;
  {
    Event e;
    e.kind = Event::Kind::kSpan;
    e.path = "tga:6Tree/pipeline.scan";
    e.at = 1.5;
    e.seconds = 0.25;
    events.push_back(e);
  }
  {
    Event e;
    e.kind = Event::Kind::kCounter;
    e.path = "scanner.hits";
    e.value = 42;
    events.push_back(e);
  }
  {
    Event e;
    e.kind = Event::Kind::kGauge;
    e.path = "pipeline.budget";
    e.value = static_cast<std::uint64_t>(std::int64_t{-5});
    events.push_back(e);
  }
  {
    Event e;
    e.kind = Event::Kind::kMessage;
    e.detail = "hello";
    events.push_back(e);
  }
  {
    Event e;
    e.kind = Event::Kind::kSample;
    e.path = "sample.hits";
    e.at = 12.5;
    e.value = 99;
    events.push_back(e);
  }
  {
    Histogram h;
    h.record(0.05);
    Event e;
    e.kind = Event::Kind::kHist;
    e.path = "transport.ICMP.rtt";
    e.detail = encode_histogram(h.total());
    events.push_back(e);
  }
  {
    Event e;
    e.kind = Event::Kind::kTimer;
    e.path = "pipeline.scan";
    e.value = 7;
    e.seconds = 3.5;
    events.push_back(e);
  }
  for (const Event& original : events) {
    const std::string line = JsonLinesSink::to_json(original);
    const auto parsed = parse_trace_line(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->kind, original.kind) << line;
    EXPECT_EQ(parsed->path, original.path) << line;
    EXPECT_EQ(parsed->detail, original.detail) << line;
    EXPECT_DOUBLE_EQ(parsed->at, original.at) << line;
    EXPECT_DOUBLE_EQ(parsed->seconds, original.seconds) << line;
    if (original.kind != Event::Kind::kHist) {
      EXPECT_EQ(parsed->value, original.value) << line;
    }
  }
}

TEST(TraceReader, RejectsUnknownOrWronglyTypedLines) {
  EXPECT_FALSE(parse_trace_line("{}").has_value());
  EXPECT_FALSE(parse_trace_line("{\"ev\":\"nope\"}").has_value());
  EXPECT_FALSE(parse_trace_line("{\"ev\":\"span\"}").has_value());  // no path
  EXPECT_FALSE(
      parse_trace_line("{\"ev\":\"counter\",\"path\":\"x\",\"value\":\"s\"}")
          .has_value());
  EXPECT_FALSE(parse_trace_line("not json").has_value());
}

TEST(TraceReader, LoadTraceCountsBadLines) {
  std::istringstream in(
      "{\"ev\":\"counter\",\"path\":\"a\",\"value\":1}\n"
      "\n"
      "garbage\n"
      "{\"ev\":\"message\",\"detail\":\"m\"}\n");
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.bad_lines, 1u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, Event::Kind::kCounter);
}

// A writer killed mid-line (crash, SIGKILL, full disk) leaves a final
// line with no trailing newline that fails to parse. That is expected
// wreckage, not corruption: it is skipped and counted as `truncated`,
// separate from interior `bad_lines`.
TEST(TraceReader, TruncatedFinalLineIsCountedNotMalformed) {
  std::istringstream in(
      "{\"ev\":\"counter\",\"path\":\"a\",\"value\":1}\n"
      "{\"ev\":\"message\",\"detail\":\"cut off he");  // no trailing \n
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.lines, 2u);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_EQ(stats.truncated, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Event::Kind::kCounter);
}

// A final line that parses is a normal event even without its newline —
// truncation is only claimed when the cut actually broke the JSON.
TEST(TraceReader, CompleteFinalLineWithoutNewlineStillParses) {
  std::istringstream in(
      "{\"ev\":\"counter\",\"path\":\"a\",\"value\":1}\n"
      "{\"ev\":\"message\",\"detail\":\"m\"}");  // no trailing \n
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_EQ(events.size(), 2u);
}

// An interior malformed line (newline-terminated) stays a bad_line:
// only the file's very last unterminated line gets the benefit of the
// doubt.
TEST(TraceReader, InteriorMalformedLineIsNotTruncation) {
  std::istringstream in(
      "{\"ev\":\"counter\",\"path\":\"a\",\"val\n"
      "{\"ev\":\"message\",\"detail\":\"m\"}\n");
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.bad_lines, 1u);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_EQ(events.size(), 1u);
}

// ---- Analyzer ------------------------------------------------------------

std::vector<Event> synthetic_trace() {
  std::vector<Event> events;
  auto span = [&](const char* path, double at, double dur) {
    Event e;
    e.kind = Event::Kind::kSpan;
    e.path = path;
    e.at = at;
    e.seconds = dur;
    events.push_back(e);
  };
  span("tga:6Tree/pipeline.run/pipeline.scan", 0.1, 2.0);
  span("tga:6Tree/pipeline.run/pipeline.scan", 2.2, 1.0);
  span("tga:6Tree/pipeline.run/pipeline.generate", 0.0, 0.1);
  span("tga:DET/pipeline.run/pipeline.scan", 0.1, 4.0);
  span("standalone", 0.0, 0.5);

  Event counter;
  counter.kind = Event::Kind::kCounter;
  counter.path = "transport.ICMP.packets";
  counter.value = 1000;
  events.push_back(counter);
  counter.path = "transport.ICMP.replies";
  counter.value = 400;
  events.push_back(counter);

  Event timer;
  timer.kind = Event::Kind::kTimer;
  timer.path = "transport.ICMP.wire_seconds";
  timer.value = 450;
  timer.seconds = 12.5;
  events.push_back(timer);

  Histogram h;
  h.record(0.050);
  h.record(0.060);
  Event hist;
  hist.kind = Event::Kind::kHist;
  hist.path = "transport.ICMP.rtt";
  hist.detail = encode_histogram(h.total());
  events.push_back(hist);

  Event sample;
  sample.kind = Event::Kind::kSample;
  sample.path = "sample.hits";
  sample.at = 33.5;
  sample.value = 12;
  events.push_back(sample);
  return events;
}

TEST(TraceAnalysis, AggregatesPhasesWireAndQuantiles) {
  const TraceSummary summary = analyze_trace(synthetic_trace(), /*top_n=*/3);
  EXPECT_EQ(summary.events, 10u);
  EXPECT_EQ(summary.samples, 1u);
  EXPECT_DOUBLE_EQ(summary.virtual_end, 33.5);

  ASSERT_EQ(summary.tga_phases.count("6Tree"), 1u);
  const auto& phases = summary.tga_phases.at("6Tree");
  ASSERT_EQ(phases.count("pipeline.scan"), 1u);
  EXPECT_EQ(phases.at("pipeline.scan").count, 2u);
  EXPECT_NEAR(phases.at("pipeline.scan").seconds(), 3.0, 1e-9);
  EXPECT_EQ(summary.tga_phases.at("DET").at("pipeline.scan").count, 1u);
  // Spans outside any tga:* root land under "".
  EXPECT_EQ(summary.tga_phases.at("").at("standalone").count, 1u);

  ASSERT_EQ(summary.wire.size(), 1u);
  EXPECT_EQ(summary.wire[0].type, "ICMP");
  EXPECT_EQ(summary.wire[0].packets, 1000u);
  EXPECT_EQ(summary.wire[0].replies, 400u);
  EXPECT_EQ(summary.wire[0].charged, 450u);
  EXPECT_NEAR(summary.wire[0].wire_seconds, 12.5, 1e-9);

  ASSERT_EQ(summary.histograms.count("transport.ICMP.rtt"), 1u);
  EXPECT_EQ(summary.histograms.at("transport.ICMP.rtt").count, 2u);

  // Slowest spans, descending, truncated to top_n.
  ASSERT_EQ(summary.slowest.size(), 3u);
  EXPECT_EQ(summary.slowest[0].path, "tga:DET/pipeline.run/pipeline.scan");
  EXPECT_DOUBLE_EQ(summary.slowest[0].seconds, 4.0);
  EXPECT_DOUBLE_EQ(summary.slowest[1].seconds, 2.0);
}

TEST(TraceAnalysis, ReportJsonIsValidAndSchemaStable) {
  const TraceSummary summary = analyze_trace(synthetic_trace());
  const std::string json = report_json(summary);
  JsonValue doc;
  ASSERT_TRUE(json_parse(json, &doc)) << json;
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  for (const char* key :
       {"events", "probes", "samples", "virtual_end", "tgas", "wire",
        "quantiles", "slowest"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
  const JsonValue* tgas = doc.find("tgas");
  ASSERT_EQ(tgas->type, JsonValue::Type::kObject);
  const JsonValue* six_tree = tgas->find("6Tree");
  ASSERT_NE(six_tree, nullptr);
  const JsonValue* scan = six_tree->find("pipeline.scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_DOUBLE_EQ(scan->find("count")->number, 2.0);
  const JsonValue* quantiles = doc.find("quantiles");
  const JsonValue* rtt = quantiles->find("transport.ICMP.rtt");
  ASSERT_NE(rtt, nullptr);
  for (const char* key : {"count", "mean", "p50", "p90", "p99", "max"}) {
    EXPECT_NE(rtt->find(key), nullptr) << key;
  }
}

TEST(Quantiles, SummaryMatchesHistogram) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(0.001 * i);
  const QuantileSummary s = summarize(h.total());
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 0.0505, 1e-9);
  EXPECT_DOUBLE_EQ(s.max, 0.1);
  EXPECT_GE(s.p50, 0.050);
  EXPECT_LE(s.p99, 0.1);
}

// ---- Exporters -----------------------------------------------------------

TEST(ChromeTrace, ProducesValidJsonWithRowsAndCounters) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    Event span;
    span.kind = Event::Kind::kSpan;
    span.path = "tga:6Tree/pipeline.scan";
    span.at = 0.5;
    span.seconds = 0.25;
    sink.emit(span);
    span.path = "tga:DET/pipeline.scan";
    sink.emit(span);
    Event sample;
    sample.kind = Event::Kind::kSample;
    sample.path = "sample.hits";
    sample.at = 10.0;
    sample.value = 3;
    sink.emit(sample);
    Event counter;  // registry totals are not exported
    counter.kind = Event::Kind::kCounter;
    counter.path = "scanner.hits";
    counter.value = 3;
    sink.emit(counter);
    sink.close();
  }
  const std::string text = out.str();
  JsonValue doc;
  ASSERT_TRUE(json_parse(text, &doc)) << text;
  const JsonValue* trace_events = doc.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->type, JsonValue::Type::kArray);
  // 2 spans + 1 sample + 2 thread_name metadata rows.
  ASSERT_EQ(trace_events->array.size(), 5u);

  int complete = 0;
  int counters = 0;
  int metadata = 0;
  std::vector<std::string> row_names;
  for (const JsonValue& event : trace_events->array) {
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      ++complete;
      EXPECT_DOUBLE_EQ(event.find("ts")->number, 0.5e6);
      EXPECT_DOUBLE_EQ(event.find("dur")->number, 0.25e6);
      EXPECT_EQ(event.find("name")->string, "pipeline.scan");
    } else if (ph->string == "C") {
      ++counters;
      EXPECT_EQ(event.find("name")->string, "sample.hits");
    } else if (ph->string == "M") {
      ++metadata;
      row_names.push_back(event.find("args")->find("name")->string);
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(metadata, 2);
  // Rows in first-appearance order get distinct tids.
  ASSERT_EQ(row_names.size(), 2u);
  EXPECT_EQ(row_names[0], "tga:6Tree");
  EXPECT_EQ(row_names[1], "tga:DET");
}

TEST(ChromeTrace, CloseIsIdempotentAndImpliedByDestruction) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    Event span;
    span.kind = Event::Kind::kSpan;
    span.path = "a";
    sink.emit(span);
  }  // destructor closes
  JsonValue doc;
  ASSERT_TRUE(json_parse(out.str(), &doc));
  EXPECT_EQ(doc.find("traceEvents")->array.size(), 2u);  // span + row name
}

TEST(TeeSink, FansOutToEverySinkInOrder) {
  MemorySink a;
  MemorySink b;
  TeeSink tee;
  tee.add(&a);
  tee.add(&b);
  Event event;
  event.kind = Event::Kind::kMessage;
  event.detail = "x";
  tee.emit(event);
  tee.flush();
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.events()[0].detail, "x");
}

// ---- End-to-end: emit_metrics -> JSONL -> reader -> analyzer -------------

TEST(TraceRoundTrip, EmitMetricsFlowsThroughReaderAndAnalyzer) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  Telemetry telemetry;
  telemetry.attach_sink(&sink);
  telemetry.registry().counter("transport.ICMP.packets").add(10);
  telemetry.registry().timer("transport.ICMP.wire_seconds").add_raw(4, 2e9);
  telemetry.registry().histogram("transport.ICMP.rtt").record(0.05);
  telemetry.emit_metrics();

  std::istringstream in(out.str());
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.bad_lines, 0u);
  const TraceSummary summary = analyze_trace(events);
  ASSERT_EQ(summary.wire.size(), 1u);
  EXPECT_EQ(summary.wire[0].packets, 10u);
  EXPECT_EQ(summary.wire[0].charged, 4u);
  EXPECT_NEAR(summary.wire[0].wire_seconds, 2.0, 1e-9);
  EXPECT_EQ(summary.histograms.at("transport.ICMP.rtt").count, 1u);
}

}  // namespace
}  // namespace v6::obs
