// StallWatchdog tests (src/obs/watchdog.h): arm/disarm semantics, the
// once-per-stall handler contract, registry metrics, the monitor
// thread, and the acceptance-path end-to-end: a wedged stage trips the
// watchdog, the trip dumps the flight recorder, and the dump parses
// through the same load_trace/analyze_trace pipeline `sos report` uses.
//
// Deadlines here are tiny (tens of milliseconds) and every wait is a
// bounded retry loop against the watchdog's own state, so the suite is
// timing-tolerant on loaded CI machines.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/trace_analysis.h"
#include "obs/trace_reader.h"
#include "obs/watchdog.h"

namespace v6::obs {
namespace {

using namespace std::chrono_literals;

StallWatchdog::Options fast(double deadline_seconds,
                            Registry* registry = nullptr) {
  StallWatchdog::Options opts;
  opts.deadline_seconds = deadline_seconds;
  opts.poll_seconds = 0.005;
  opts.registry = registry;
  return opts;
}

TEST(Heartbeat, CountsAndArmFlagAreIndependent) {
  Heartbeat hb;
  EXPECT_EQ(hb.count(), 0u);
  EXPECT_FALSE(hb.armed());
  hb.beat();
  hb.beat();
  EXPECT_EQ(hb.count(), 2u);
  hb.arm();
  EXPECT_TRUE(hb.armed());
  hb.disarm();
  EXPECT_FALSE(hb.armed());
  EXPECT_EQ(hb.count(), 2u);
}

TEST(StallWatchdog, StageReturnsStableAddresses) {
  StallWatchdog watchdog(fast(10.0));
  Heartbeat& a = watchdog.stage("stream.producer");
  Heartbeat& b = watchdog.stage("stream.receiver");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&watchdog.stage("stream.producer"), &a);
  EXPECT_EQ(&watchdog.stage("stream.receiver"), &b);
}

TEST(StallWatchdog, DisarmedStagesNeverTrip) {
  StallWatchdog watchdog(fast(0.01));
  watchdog.stage("idle");  // registered but never armed
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(watchdog.check_now());
  EXPECT_FALSE(watchdog.tripped());
}

TEST(StallWatchdog, ArmedSilentStageTripsOncePerStall) {
  Registry registry;
  StallWatchdog watchdog(fast(0.01, &registry));
  std::vector<std::string> stalled;
  watchdog.on_stall([&](const StallWatchdog::StallReport& report) {
    stalled.push_back(report.stage);
    EXPECT_GE(report.idle_seconds, report.deadline_seconds);
    EXPECT_FALSE(report.stages.empty());
    EXPECT_FALSE(report.to_text().empty());
  });

  Heartbeat& hb = watchdog.stage("stream.scan");
  hb.arm();
  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(watchdog.check_now());
  EXPECT_TRUE(watchdog.tripped());
  EXPECT_EQ(watchdog.trips(), 1u);
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], "stream.scan");

  // Still silent: the handler does not refire for the same stall.
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(watchdog.check_now());
  EXPECT_EQ(watchdog.trips(), 1u);
  EXPECT_EQ(stalled.size(), 1u);

  // Progress clears the stall; a new silence is a new trip.
  hb.beat();
  EXPECT_FALSE(watchdog.check_now());
  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(watchdog.check_now());
  EXPECT_EQ(watchdog.trips(), 2u);

  EXPECT_EQ(registry.snapshot().counters.at("watchdog.trips.wall"), 2u);
}

TEST(StallWatchdog, BeatingStageStaysHealthy) {
  StallWatchdog watchdog(fast(0.25));
  Heartbeat& hb = watchdog.stage("busy");
  hb.arm();
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(5ms);
    hb.beat();
    EXPECT_FALSE(watchdog.check_now());
  }
  hb.disarm();
  EXPECT_FALSE(watchdog.tripped());
}

TEST(StallWatchdog, ArmTransitionResetsIdleClock) {
  StallWatchdog watchdog(fast(0.05));
  Heartbeat& hb = watchdog.stage("cyclic");
  // A long disarmed gap must not count against the next armed window.
  std::this_thread::sleep_for(80ms);
  hb.arm();
  EXPECT_FALSE(watchdog.check_now());
  hb.disarm();
}

TEST(StallWatchdog, MonitorThreadFiresHandler) {
  Registry registry;
  StallWatchdog watchdog(fast(0.01, &registry));
  watchdog.stage("wedged").arm();
  watchdog.on_stall([](const StallWatchdog::StallReport&) {});
  watchdog.start();
  // Bounded wait: the monitor polls every 5ms against a 10ms deadline.
  for (int i = 0; i < 400 && !watchdog.tripped(); ++i) {
    std::this_thread::sleep_for(5ms);
  }
  watchdog.stop();
  EXPECT_TRUE(watchdog.tripped());
  EXPECT_GE(registry.snapshot().gauges.at("watchdog.stalled.wall"), 1);
}

TEST(StallWatchdog, StatusReportsEveryStage) {
  StallWatchdog watchdog(fast(10.0));
  watchdog.stage("a").arm();
  watchdog.stage("b");
  watchdog.stage("a").beat();
  const std::vector<StallWatchdog::StageStatus> status = watchdog.status();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_EQ(status[0].name, "a");
  EXPECT_EQ(status[0].beats, 1u);
  EXPECT_TRUE(status[0].armed);
  EXPECT_EQ(status[1].name, "b");
  EXPECT_FALSE(status[1].armed);
}

// The acceptance path (ISSUE: watchdog trip on a wedged stage produces
// a flight-recorder dump that `sos report` parses): a recorder full of
// events, a wedged stage, a trip handler that dumps — and the dump
// flows through load_trace and analyze_trace exactly like a trace file.
TEST(StallWatchdog, TripDumpsFlightRecorderParseableEndToEnd) {
  FlightRecorder recorder;
  // A realistic ring: spans, probes, counters — what a live scan leaves.
  for (int i = 0; i < 32; ++i) {
    Event span;
    span.kind = Event::Kind::kSpan;
    span.path = "tga:6Tree/pipeline.run/pipeline.scan";
    span.at = 0.1 * i;
    span.seconds = 0.05;
    recorder.emit(span);
    Event probe;
    probe.kind = Event::Kind::kProbe;
    probe.path = "2001:db8::" + std::to_string(i);
    probe.detail = "ICMP->echo-reply";
    probe.at = 0.1 * i;
    recorder.emit(probe);
  }

  Registry registry;
  StallWatchdog watchdog(fast(0.01, &registry));
  std::ostringstream dump;
  std::string report_text;
  watchdog.on_stall([&](const StallWatchdog::StallReport& report) {
    report_text = report.to_text();
    recorder.dump_jsonl(dump);
  });

  watchdog.stage("stream.prober.0").arm();
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(watchdog.check_now());

  // The diagnostics name the wedged stage...
  EXPECT_NE(report_text.find("stream.prober.0"), std::string::npos);

  // ...and the dump is a well-formed trace the report pipeline accepts.
  std::istringstream in(dump.str());
  std::vector<Event> events;
  const TraceLoadStats stats = load_trace(in, &events);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_EQ(stats.truncated, 0u);
  ASSERT_EQ(events.size(), 64u);
  const TraceSummary summary = analyze_trace(events, /*top=*/5);
  EXPECT_EQ(summary.events, 64u);
  EXPECT_EQ(summary.probes, 32u);
  EXPECT_FALSE(summary.slowest.empty());
}

}  // namespace
}  // namespace v6::obs
