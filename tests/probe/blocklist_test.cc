#include "probe/blocklist.h"

#include <gtest/gtest.h>

namespace v6::probe {
namespace {

using v6::net::Ipv6Addr;
using v6::net::Prefix;

TEST(Blocklist, EmptyBlocksNothing) {
  const Blocklist list;
  EXPECT_FALSE(list.blocked(Ipv6Addr::must_parse("2001:db8::1")));
  EXPECT_EQ(list.size(), 0u);
}

TEST(Blocklist, AddAndCheck) {
  Blocklist list;
  list.add(Prefix::must_parse("2001:db8::/32"));
  EXPECT_TRUE(list.blocked(Ipv6Addr::must_parse("2001:db8::1")));
  EXPECT_TRUE(list.blocked(Ipv6Addr::must_parse("2001:db8:ffff::1")));
  EXPECT_FALSE(list.blocked(Ipv6Addr::must_parse("2001:db9::1")));
}

TEST(Blocklist, LoadParsesLinesAndComments) {
  Blocklist list;
  const std::size_t added = list.load(
      "# do-not-scan list\n"
      "2001:db8::/32\n"
      "\n"
      "  2620:0:2d0::/48  # org request\n"
      "not-a-prefix\n"
      "fe80::/10\r\n");
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.blocked(Ipv6Addr::must_parse("2620:0:2d0::7")));
  EXPECT_TRUE(list.blocked(Ipv6Addr::must_parse("fe80::1")));
  EXPECT_FALSE(list.blocked(Ipv6Addr::must_parse("2620:0:2d1::7")));
}

TEST(Blocklist, LoadWithoutTrailingNewline) {
  Blocklist list;
  EXPECT_EQ(list.load("2001:db8::/32"), 1u);
  EXPECT_TRUE(list.blocked(Ipv6Addr::must_parse("2001:db8::1")));
}

TEST(Blocklist, FullLineComment) {
  Blocklist list;
  EXPECT_EQ(list.load("# 2001:db8::/32\n"), 0u);
}

}  // namespace
}  // namespace v6::probe
