#include "probe/rate_limiter.h"

#include <gtest/gtest.h>

namespace v6::probe {
namespace {

TEST(RateLimiter, BurstIsFree) {
  RateLimiter limiter(1000.0, /*burst=*/10.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(limiter.acquire(), 0.0) << i;
  }
  EXPECT_GT(limiter.acquire(), 0.0);
}

TEST(RateLimiter, SustainedRateMatchesPps) {
  RateLimiter limiter(1000.0, /*burst=*/1.0);
  for (int i = 0; i < 5000; ++i) limiter.acquire();
  // 5000 packets at 1000 pps should take ~5 virtual seconds.
  EXPECT_NEAR(limiter.virtual_now(), 5.0, 0.1);
  EXPECT_EQ(limiter.packets(), 5000u);
}

TEST(RateLimiter, AdvanceRefillsTokens) {
  RateLimiter limiter(100.0, /*burst=*/5.0);
  for (int i = 0; i < 5; ++i) limiter.acquire();
  limiter.advance(1.0);  // refills 100 tokens, capped at burst 5
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(limiter.acquire(), 0.0);
  }
  EXPECT_GT(limiter.acquire(), 0.0);
}

TEST(RateLimiter, AdvanceNegativeIsNoop) {
  RateLimiter limiter(100.0);
  const double before = limiter.virtual_now();
  limiter.advance(-5.0);
  EXPECT_EQ(limiter.virtual_now(), before);
}

TEST(RateLimiter, DegenerateRateClamped) {
  RateLimiter limiter(0.0);  // clamped to 1 pps
  EXPECT_EQ(limiter.pps(), 1.0);
}

TEST(RateLimiter, PaperRateTenThousandPps) {
  // The paper rate-limits all scans to 10K pps; 1M packets ~ 100 s.
  RateLimiter limiter(10'000.0, 64.0);
  for (int i = 0; i < 1'000'000; ++i) limiter.acquire();
  EXPECT_NEAR(limiter.virtual_now(), 100.0, 1.0);
}

}  // namespace
}  // namespace v6::probe
