#include "probe/rate_limiter.h"

#include <gtest/gtest.h>

#include <limits>

namespace v6::probe {
namespace {

TEST(RateLimiter, BurstIsFree) {
  RateLimiter limiter(1000.0, /*burst=*/10.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(limiter.acquire(), 0.0) << i;
  }
  EXPECT_GT(limiter.acquire(), 0.0);
}

TEST(RateLimiter, SustainedRateMatchesPps) {
  RateLimiter limiter(1000.0, /*burst=*/1.0);
  for (int i = 0; i < 5000; ++i) limiter.acquire();
  // 5000 packets at 1000 pps should take ~5 virtual seconds.
  EXPECT_NEAR(limiter.virtual_now(), 5.0, 0.1);
  EXPECT_EQ(limiter.packets(), 5000u);
}

TEST(RateLimiter, AdvanceRefillsTokens) {
  RateLimiter limiter(100.0, /*burst=*/5.0);
  for (int i = 0; i < 5; ++i) limiter.acquire();
  limiter.advance(1.0);  // refills 100 tokens, capped at burst 5
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(limiter.acquire(), 0.0);
  }
  EXPECT_GT(limiter.acquire(), 0.0);
}

TEST(RateLimiter, AdvanceNegativeIsNoop) {
  RateLimiter limiter(100.0);
  const double before = limiter.virtual_now();
  limiter.advance(-5.0);
  EXPECT_EQ(limiter.virtual_now(), before);
}

TEST(RateLimiter, DegenerateRateClamped) {
  RateLimiter limiter(0.0);  // clamped to 1 pps
  EXPECT_EQ(limiter.pps(), 1.0);
}

TEST(RateLimiter, AdvanceZeroIsNoop) {
  RateLimiter limiter(100.0, /*burst=*/1.0);
  limiter.acquire();  // drain the bucket
  limiter.advance(0.0);
  EXPECT_EQ(limiter.virtual_now(), 0.0);
  // No refill happened: the next acquire still waits a full token.
  EXPECT_NEAR(limiter.acquire(), 0.01, 1e-12);
}

TEST(RateLimiter, AdvanceNanIsNoop) {
  RateLimiter limiter(100.0, /*burst=*/1.0);
  limiter.acquire();
  limiter.advance(std::numeric_limits<double>::quiet_NaN());
  // NaN must not poison the virtual clock or the bucket.
  EXPECT_EQ(limiter.virtual_now(), 0.0);
  EXPECT_NEAR(limiter.acquire(), 0.01, 1e-12);
}

TEST(RateLimiter, NanParametersClamped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RateLimiter limiter(nan, nan);
  EXPECT_EQ(limiter.pps(), 1.0);
  // burst clamps to one token: the first packet is free, the second
  // waits exactly one token interval — the limiter still paces.
  EXPECT_EQ(limiter.acquire(), 0.0);
  EXPECT_NEAR(limiter.acquire(), 1.0, 1e-12);
  EXPECT_FALSE(limiter.virtual_now() != limiter.virtual_now());  // not NaN
}

TEST(RateLimiter, SubTokenBurstClampedToOne) {
  // A bucket that can never hold one full token would make acquire()
  // wait forever-growing deficits; burst < 1 clamps to 1.
  RateLimiter limiter(1000.0, /*burst=*/0.25);
  EXPECT_EQ(limiter.acquire(), 0.0);          // one full token available
  EXPECT_NEAR(limiter.acquire(), 1e-3, 1e-12);  // then exact pacing
  EXPECT_NEAR(limiter.acquire(), 1e-3, 1e-12);
}

TEST(RateLimiter, FractionalBurstWaitsAreExact) {
  // burst = 2.5: packets 1-2 free, packet 3 waits for the missing half
  // token, packet 4 a full interval.
  RateLimiter limiter(10.0, /*burst=*/2.5);
  EXPECT_EQ(limiter.acquire(), 0.0);
  EXPECT_EQ(limiter.acquire(), 0.0);
  EXPECT_NEAR(limiter.acquire(), 0.05, 1e-12);  // 0.5 token / 10 pps
  EXPECT_NEAR(limiter.acquire(), 0.1, 1e-12);
}

TEST(RateLimiter, AdvanceRefillClampedAtBurst) {
  RateLimiter limiter(1'000'000.0, /*burst=*/2.0);
  limiter.acquire();
  limiter.acquire();
  limiter.advance(1e9);  // would refill 1e15 tokens; capped at 2
  EXPECT_EQ(limiter.acquire(), 0.0);
  EXPECT_EQ(limiter.acquire(), 0.0);
  EXPECT_GT(limiter.acquire(), 0.0);
}

TEST(RateLimiter, PpsBoundaryExactlyOne) {
  // 1 pps, burst 1: the n-th packet (n > 1) waits exactly 1 s.
  RateLimiter limiter(1.0, /*burst=*/1.0);
  EXPECT_EQ(limiter.acquire(), 0.0);
  EXPECT_EQ(limiter.acquire(), 1.0);
  EXPECT_EQ(limiter.acquire(), 1.0);
  EXPECT_EQ(limiter.virtual_now(), 2.0);
  EXPECT_EQ(limiter.packets(), 3u);
}

TEST(RateLimiter, PaperRateTenThousandPps) {
  // The paper rate-limits all scans to 10K pps; 1M packets ~ 100 s.
  RateLimiter limiter(10'000.0, 64.0);
  for (int i = 0; i < 1'000'000; ++i) limiter.acquire();
  EXPECT_NEAR(limiter.virtual_now(), 100.0, 1.0);
}

}  // namespace
}  // namespace v6::probe
