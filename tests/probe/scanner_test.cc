#include "probe/scanner.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/rng.h"
#include "probe/transport.h"
#include "testutil/fixtures.h"

namespace v6::probe {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;

/// Scripted transport: replies from a per-address script, with optional
/// leading timeouts to exercise retry behaviour.
class FakeTransport final : public ProbeTransport {
 public:
  struct Behaviour {
    ProbeReply reply = ProbeReply::kTimeout;
    int timeouts_before_reply = 0;
  };

  void set(const Ipv6Addr& addr, ProbeReply reply, int timeouts_first = 0) {
    behaviour_[addr] = {reply, timeouts_first};
  }

  ProbeReply send(const Ipv6Addr& addr, ProbeType) override {
    ++packets_;
    ++per_addr_sends_[addr];
    const auto it = behaviour_.find(addr);
    if (it == behaviour_.end()) return ProbeReply::kTimeout;
    if (it->second.timeouts_before_reply > 0) {
      --it->second.timeouts_before_reply;
      return ProbeReply::kTimeout;
    }
    return it->second.reply;
  }

  std::uint64_t packets_sent() const override { return packets_; }
  int sends_to(const Ipv6Addr& addr) const {
    const auto it = per_addr_sends_.find(addr);
    return it == per_addr_sends_.end() ? 0 : it->second;
  }

 private:
  std::map<Ipv6Addr, Behaviour> behaviour_;
  std::map<Ipv6Addr, int> per_addr_sends_;
  std::uint64_t packets_ = 0;
};

Ipv6Addr addr_n(std::uint64_t n) {
  return Ipv6Addr(0x20010db800000000ULL, n);
}

TEST(Scanner, ClassifiesReplies) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply);
  transport.set(addr_n(2), ProbeReply::kRst);
  transport.set(addr_n(3), ProbeReply::kDestUnreachable);
  // addr 4: timeout.
  Scanner scanner(transport, nullptr, {.max_retries = 0, .seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1), addr_n(2), addr_n(3),
                                         addr_n(4)};
  const ScanStats stats =
      scanner.scan(targets, ProbeType::kIcmp, nullptr);
  EXPECT_EQ(stats.probed, 4u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.rsts, 1u);
  EXPECT_EQ(stats.unreachables, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
}

TEST(Scanner, RstIsNotAHit) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kRst);
  Scanner scanner(transport, nullptr, {.seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1)};
  const auto result = scanner.scan_hits(targets, ProbeType::kTcp80);
  EXPECT_TRUE(result.hits.empty());
}

TEST(Scanner, DestUnreachableIsNotAHit) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kDestUnreachable);
  Scanner scanner(transport, nullptr, {.seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1)};
  EXPECT_TRUE(scanner.scan_hits(targets, ProbeType::kIcmp).hits.empty());
}

TEST(Scanner, MismatchedPositiveReplyIsNotAHit) {
  // A SYN-ACK in response to an ICMP echo is a verification failure.
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kSynAck);
  Scanner scanner(transport, nullptr, {.seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1)};
  EXPECT_TRUE(scanner.scan_hits(targets, ProbeType::kIcmp).hits.empty());
}

TEST(Scanner, DeduplicatesTargets) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply);
  Scanner scanner(transport, nullptr, {.max_retries = 0, .seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1), addr_n(1), addr_n(1)};
  const ScanStats stats = scanner.scan(targets, ProbeType::kIcmp, nullptr);
  EXPECT_EQ(stats.targets, 3u);
  EXPECT_EQ(stats.deduped, 2u);
  EXPECT_EQ(stats.probed, 1u);
  EXPECT_EQ(transport.sends_to(addr_n(1)), 1);
}

TEST(Scanner, RetriesRecoverLostReplies) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply, /*timeouts_first=*/2);
  Scanner scanner(transport, nullptr, {.max_retries = 2, .seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1)};
  const auto result = scanner.scan_hits(targets, ProbeType::kIcmp);
  EXPECT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(transport.sends_to(addr_n(1)), 3);
}

TEST(Scanner, RetriesExhausted) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply, /*timeouts_first=*/3);
  Scanner scanner(transport, nullptr, {.max_retries = 2, .seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1)};
  EXPECT_TRUE(scanner.scan_hits(targets, ProbeType::kIcmp).hits.empty());
}

TEST(Scanner, BlocklistedAddressesNeverProbed) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply);
  Blocklist blocklist;
  blocklist.add(v6::net::Prefix::must_parse("2001:db8::/32"));
  Scanner scanner(transport, &blocklist, {.seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1), addr_n(2)};
  const ScanStats stats = scanner.scan(targets, ProbeType::kIcmp, nullptr);
  EXPECT_EQ(stats.blocked, 2u);
  EXPECT_EQ(stats.probed, 0u);
  EXPECT_EQ(transport.packets_sent(), 0u);
}

TEST(Scanner, ProbeOneHonorsBlocklist) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply);
  Blocklist blocklist;
  blocklist.add(v6::net::Prefix::must_parse("2001:db8::/32"));
  Scanner scanner(transport, &blocklist, {.seed = 1});
  // Blocked is reported as "no probe happened", not as a timeout.
  EXPECT_EQ(scanner.probe_one(addr_n(1), ProbeType::kIcmp), std::nullopt);
  EXPECT_EQ(transport.packets_sent(), 0u);
}

TEST(Scanner, ProbeOneMatchesScanClassification) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply, /*timeouts_first=*/1);
  Scanner scanner(transport, nullptr, {.max_retries = 1, .seed = 1});
  const auto reply = scanner.probe_one(addr_n(1), ProbeType::kIcmp);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, ProbeReply::kEchoReply);
  EXPECT_EQ(transport.sends_to(addr_n(1)), 2);
}

TEST(Scanner, ScratchReuseKeepsScansIndependent) {
  // Back-to-back scans through one scanner must dedup per call, not
  // across calls (the scratch set is reused but cleared).
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply);
  Scanner scanner(transport, nullptr, {.max_retries = 0, .seed = 1});
  const std::vector<Ipv6Addr> targets = {addr_n(1), addr_n(1)};
  const ScanStats first = scanner.scan(targets, ProbeType::kIcmp, nullptr);
  const ScanStats second = scanner.scan(targets, ProbeType::kIcmp, nullptr);
  EXPECT_EQ(first.probed, 1u);
  EXPECT_EQ(second.probed, 1u);
  EXPECT_EQ(first.deduped, 1u);
  EXPECT_EQ(second.deduped, 1u);
  EXPECT_EQ(transport.sends_to(addr_n(1)), 2);
}

TEST(Scanner, CallbackSeesEveryProbedAddress) {
  FakeTransport transport;
  transport.set(addr_n(1), ProbeReply::kEchoReply);
  Scanner scanner(transport, nullptr, {.max_retries = 0, .seed = 1});
  std::vector<Ipv6Addr> targets;
  for (std::uint64_t i = 0; i < 50; ++i) targets.push_back(addr_n(i));
  std::size_t callbacks = 0;
  scanner.scan(targets, ProbeType::kIcmp,
               [&](const Ipv6Addr&, ProbeReply) { ++callbacks; });
  EXPECT_EQ(callbacks, 50u);
}

TEST(Scanner, VirtualTimeAccountsForRate) {
  FakeTransport transport;
  Scanner scanner(transport, nullptr,
                  {.max_retries = 0, .max_pps = 1000.0, .seed = 1});
  std::vector<Ipv6Addr> targets;
  for (std::uint64_t i = 0; i < 5000; ++i) targets.push_back(addr_n(i));
  const ScanStats stats = scanner.scan(targets, ProbeType::kIcmp, nullptr);
  EXPECT_NEAR(stats.virtual_seconds, 5.0, 0.2);
}

TEST(Scanner, DeterministicAgainstSimUniverse) {
  const auto& universe = v6::testutil::small_universe();
  std::vector<Ipv6Addr> targets;
  for (const auto& host : universe.hosts()) {
    targets.push_back(host.addr);
    if (targets.size() >= 5000) break;
  }
  auto run = [&] {
    SimTransport transport(universe, 77);
    Scanner scanner(transport, nullptr, {.seed = 77});
    auto result = scanner.scan_hits(targets, ProbeType::kIcmp);
    return std::pair(std::move(result.hits), result.stats.packets);
  };
  const auto [hits_a, packets_a] = run();
  const auto [hits_b, packets_b] = run();
  EXPECT_EQ(hits_a, hits_b);
  EXPECT_EQ(packets_a, packets_b);
  EXPECT_FALSE(hits_a.empty());
}

}  // namespace
}  // namespace v6::probe
