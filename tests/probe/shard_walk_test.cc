// Property tests for the sharded cyclic walk (probe/shard_walk.h):
// every shard split of every seeded plan visits each target index
// exactly once, cycle positions are shard-count-invariant, and sorting
// a shard merge by position reproduces the single-shard order.
#include "probe/shard_walk.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/rng.h"

namespace {

using v6::probe::ShardItem;
using v6::probe::ShardPlan;
using v6::probe::ShardWalk;

/// Collects one shard's full emission in order.
std::vector<ShardItem> collect(const ShardPlan& plan, std::uint64_t shard,
                               std::uint64_t num_shards) {
  std::vector<ShardItem> items;
  ShardWalk walk(plan, shard, num_shards);
  ShardItem item;
  while (walk.next(&item)) items.push_back(item);
  return items;
}

/// Merges every shard's emission and sorts by cycle position.
std::vector<ShardItem> merged_by_pos(const ShardPlan& plan,
                                     std::uint64_t num_shards) {
  std::vector<ShardItem> all;
  for (std::uint64_t s = 0; s < num_shards; ++s) {
    const std::vector<ShardItem> items = collect(plan, s, num_shards);
    all.insert(all.end(), items.begin(), items.end());
  }
  std::sort(all.begin(), all.end(),
            [](const ShardItem& a, const ShardItem& b) { return a.pos < b.pos; });
  return all;
}

TEST(ShardWalkTest, SingleShardIsAPermutation) {
  for (const std::uint64_t n : {1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 8ull,
                                9ull, 100ull, 1000ull, 1023ull, 1025ull}) {
    const ShardPlan plan(n, /*seed=*/42);
    const std::vector<ShardItem> items = collect(plan, 0, 1);
    ASSERT_EQ(items.size(), n) << "n=" << n;
    std::vector<bool> seen(n, false);
    std::uint64_t last_pos = 0;
    bool first = true;
    for (const ShardItem& item : items) {
      ASSERT_LT(item.index, n);
      EXPECT_FALSE(seen[item.index]) << "index visited twice, n=" << n;
      seen[item.index] = true;
      if (!first) EXPECT_GT(item.pos, last_pos) << "positions not increasing";
      last_pos = item.pos;
      first = false;
    }
  }
}

TEST(ShardWalkTest, PropertyShardsPartitionEveryTargetExactlyOnce) {
  v6::net::Rng rng = v6::net::make_rng(/*seed=*/2024, /*tag=*/0x3A1D);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t n =
        v6::net::uniform_int<std::uint64_t>(rng, 1, 3000);
    const std::uint64_t shards = v6::net::uniform_int<std::uint64_t>(rng, 1, 9);
    const std::uint64_t seed = rng();
    const ShardPlan plan(n, seed);
    std::vector<int> visits(n, 0);
    for (std::uint64_t s = 0; s < shards; ++s) {
      for (const ShardItem& item : collect(plan, s, shards)) {
        ASSERT_LT(item.index, n);
        ++visits[item.index];
      }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i], 1) << "n=" << n << " shards=" << shards
                              << " seed=" << seed << " index=" << i;
    }
  }
}

TEST(ShardWalkTest, PropertyPositionsAreShardCountInvariant) {
  v6::net::Rng rng = v6::net::make_rng(/*seed=*/2024, /*tag=*/0x3A1E);
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t n =
        v6::net::uniform_int<std::uint64_t>(rng, 1, 2000);
    const std::uint64_t seed = rng();
    const ShardPlan plan(n, seed);
    const std::vector<ShardItem> reference = collect(plan, 0, 1);
    for (const std::uint64_t shards : {2ull, 3ull, 5ull, 8ull}) {
      const std::vector<ShardItem> merged = merged_by_pos(plan, shards);
      ASSERT_EQ(merged.size(), reference.size())
          << "n=" << n << " shards=" << shards << " seed=" << seed;
      for (std::size_t i = 0; i < merged.size(); ++i) {
        ASSERT_EQ(merged[i].index, reference[i].index)
            << "n=" << n << " shards=" << shards << " seed=" << seed;
        ASSERT_EQ(merged[i].pos, reference[i].pos)
            << "n=" << n << " shards=" << shards << " seed=" << seed;
      }
    }
  }
}

TEST(ShardWalkTest, ShardsVisitDistinctCyclePositionsModuloStride) {
  const ShardPlan plan(/*n=*/500, /*seed=*/7);
  for (const std::uint64_t shards : {2ull, 4ull, 7ull}) {
    for (std::uint64_t s = 0; s < shards; ++s) {
      for (const ShardItem& item : collect(plan, s, shards)) {
        EXPECT_EQ(item.pos % shards, s);
      }
    }
  }
}

TEST(ShardWalkTest, PlanIsAPureFunctionOfSizeAndSeed) {
  const ShardPlan a(1000, 99);
  const ShardPlan b(1000, 99);
  EXPECT_EQ(a.multiplier(), b.multiplier());
  EXPECT_EQ(a.increment(), b.increment());
  EXPECT_EQ(a.start(), b.start());
  // Hull–Dobell for m = 2^k: c odd, a ≡ 1 (mod 4).
  EXPECT_EQ(a.increment() % 2, 1u);
  EXPECT_EQ(a.multiplier() % 4, 1u);
  const ShardPlan other_seed(1000, 100);
  EXPECT_FALSE(a.multiplier() == other_seed.multiplier() &&
               a.increment() == other_seed.increment() &&
               a.start() == other_seed.start());
}

TEST(ShardWalkTest, SeedChangesTheOrderButNotTheSet) {
  const std::uint64_t n = 257;
  const std::vector<ShardItem> walk_a = collect(ShardPlan(n, 1), 0, 1);
  const std::vector<ShardItem> walk_b = collect(ShardPlan(n, 2), 0, 1);
  ASSERT_EQ(walk_a.size(), n);
  ASSERT_EQ(walk_b.size(), n);
  bool any_difference = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (walk_a[i].index != walk_b[i].index) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference) << "different seeds produced identical orders";
}

}  // namespace
