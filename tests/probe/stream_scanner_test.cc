// StreamScanner (probe/stream_scanner.h) determinism contract: the
// shard-merged ScanResult is bit-identical across shard counts and
// seeds, reply callbacks fire in the canonical cycle-position order,
// the blocklist and dedup paths match the batch engine's pre-wire
// accounting, and stateless probe validation (probe_auth.h) never
// rejects a legitimate simulated reply. Labeled shard + concurrency so
// the tsan preset exercises the pipeline.
#include "probe/stream_scanner.h"

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/ipv6.h"
#include "net/prefix.h"
#include "net/rng.h"
#include "obs/telemetry.h"
#include "probe/probe_auth.h"
#include "probe/scanner.h"
#include "probe/transport.h"
#include "testutil/fixtures.h"
#include "testutil/generators.h"

namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;
using v6::probe::ScanOptions;
using v6::probe::ScanResult;
using v6::probe::ScanStats;
using v6::probe::StreamScanner;
using v6::probe::StreamScanOptions;

/// A target mix with guaranteed hits (real universe hosts), guaranteed
/// duplicates, and random addresses (~20% repeats) from the generator.
std::vector<Ipv6Addr> mixed_targets(std::uint64_t seed, std::size_t count) {
  const auto& universe = v6::testutil::small_universe();
  const auto hosts = universe.hosts();
  std::vector<Ipv6Addr> targets;
  targets.reserve(count + count / 2);
  for (std::size_t i = 0; i < count / 2; ++i) {
    targets.push_back(hosts[i % hosts.size()].addr);
  }
  v6::net::Rng rng = v6::net::make_rng(seed, /*tag=*/0x7E57);
  const v6::net::Prefix scope(hosts[0].addr, 40);
  const auto random_part =
      v6::testutil::random_probe_schedule(rng, scope, count / 2);
  targets.insert(targets.end(), random_part.begin(), random_part.end());
  // Deterministic duplicates of the host section on top of the
  // generator's own repeats.
  for (std::size_t i = 0; i < count / 4; ++i) {
    targets.push_back(targets[i * 2]);
  }
  return targets;
}

void expect_stats_eq(const ScanStats& a, const ScanStats& b,
                     const std::string& context) {
  EXPECT_EQ(a.targets, b.targets) << context;
  EXPECT_EQ(a.deduped, b.deduped) << context;
  EXPECT_EQ(a.blocked, b.blocked) << context;
  EXPECT_EQ(a.probed, b.probed) << context;
  EXPECT_EQ(a.packets, b.packets) << context;
  EXPECT_EQ(a.hits, b.hits) << context;
  EXPECT_EQ(a.rsts, b.rsts) << context;
  EXPECT_EQ(a.unreachables, b.unreachables) << context;
  EXPECT_EQ(a.timeouts, b.timeouts) << context;
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds) << context;
  EXPECT_EQ(a.retransmissions, b.retransmissions) << context;
  EXPECT_EQ(a.backoffs, b.backoffs) << context;
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds) << context;
}

ScanResult run_stream(const ScanOptions& scan, unsigned shards,
                      std::size_t batch, const v6::probe::Blocklist* blocklist,
                      std::span<const Ipv6Addr> targets,
                      std::uint64_t* invalid = nullptr) {
  StreamScanner scanner(v6::testutil::small_universe(), blocklist,
                        StreamScanOptions{}
                            .with_shards(shards)
                            .with_batch(batch)
                            .with_queue_capacity(4)
                            .with_scan(scan));
  ScanResult result = scanner.scan_hits(targets, ProbeType::kIcmp);
  if (invalid != nullptr) *invalid = scanner.invalid_replies();
  return result;
}

TEST(StreamScannerTest, BitIdenticalAcrossShardCountsAndOptions) {
  struct Variant {
    std::string name;
    ScanOptions scan;
  };
  const std::vector<Variant> variants = {
      {"default", ScanOptions{}.with_seed(1)},
      {"retries", ScanOptions{}.with_seed(7).with_retries(3)},
      {"robust", ScanOptions{}
                     .with_seed(11)
                     .with_retries(2)
                     .with_probe_timeout(0.05)
                     .with_retry_backoff(0.1, /*jitter=*/0.5)},
      {"inorder", ScanOptions{}.with_seed(3).with_randomize_order(false)},
  };
  const std::vector<Ipv6Addr> targets = mixed_targets(/*seed=*/99, 600);
  for (const Variant& variant : variants) {
    std::uint64_t invalid = 0;
    const ScanResult reference = run_stream(variant.scan, 1, 64, nullptr,
                                            targets, &invalid);
    EXPECT_EQ(invalid, 0u) << variant.name;
    EXPECT_GT(reference.stats.probed, 0u) << variant.name;
    EXPECT_GT(reference.stats.hits, 0u) << variant.name;
    EXPECT_GT(reference.stats.deduped, 0u) << variant.name;
    for (const unsigned shards : {2u, 3u, 4u}) {
      // A batch size that does not divide the target count exercises the
      // producer's tail batches.
      const ScanResult result = run_stream(variant.scan, shards, 37, nullptr,
                                           targets, &invalid);
      EXPECT_EQ(invalid, 0u) << variant.name;
      const std::string context =
          variant.name + " shards=" + std::to_string(shards);
      EXPECT_EQ(result.hits, reference.hits) << context;
      expect_stats_eq(result.stats, reference.stats, context);
    }
  }
}

TEST(StreamScannerTest, CallbackOrderIsCanonicalAcrossShardCounts) {
  const std::vector<Ipv6Addr> targets = mixed_targets(/*seed=*/5, 400);
  const ScanOptions scan = ScanOptions{}.with_seed(21);
  using Event = std::pair<Ipv6Addr, ProbeReply>;
  auto collect = [&](unsigned shards) {
    std::vector<Event> events;
    StreamScanner scanner(
        v6::testutil::small_universe(), nullptr,
        StreamScanOptions{}.with_shards(shards).with_scan(scan));
    scanner.scan(targets, ProbeType::kIcmp,
                 [&](const Ipv6Addr& addr, ProbeReply reply) {
                   events.emplace_back(addr, reply);
                 });
    return events;
  };
  const std::vector<Event> one = collect(1);
  const std::vector<Event> three = collect(3);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, three);
}

TEST(StreamScannerTest, BlocklistSkipsWithoutProbing) {
  const auto& universe = v6::testutil::small_universe();
  const auto hosts = universe.hosts();
  v6::probe::Blocklist blocklist;
  blocklist.add(v6::net::Prefix(hosts[0].addr, 32));
  const std::vector<Ipv6Addr> targets = mixed_targets(/*seed=*/17, 500);
  for (const unsigned shards : {1u, 3u}) {
    std::vector<Ipv6Addr> seen;
    StreamScanner scanner(
        universe, &blocklist,
        StreamScanOptions{}.with_shards(shards).with_scan(
            ScanOptions{}.with_seed(2)));
    const ScanStats stats =
        scanner.scan(targets, ProbeType::kIcmp,
                     [&](const Ipv6Addr& addr, ProbeReply) {
                       seen.push_back(addr);
                     });
    EXPECT_GT(stats.blocked, 0u);
    EXPECT_EQ(stats.probed + stats.blocked + stats.deduped, stats.targets);
    EXPECT_EQ(seen.size(), stats.probed);
    for (const Ipv6Addr& addr : seen) {
      EXPECT_FALSE(blocklist.blocked(addr));
    }
  }
}

TEST(StreamScannerTest, AgreesWithBatchEngineOnPreWireAccounting) {
  const auto& universe = v6::testutil::small_universe();
  const std::vector<Ipv6Addr> targets = mixed_targets(/*seed=*/31, 500);
  const ScanOptions scan = ScanOptions{}.with_seed(4);
  v6::probe::SimTransport wire(universe, scan.seed);
  v6::probe::Scanner batch(wire, nullptr, scan);
  const ScanResult batch_result = batch.scan_hits(targets, ProbeType::kIcmp);
  const ScanResult stream_result =
      run_stream(scan, 2, 64, nullptr, targets);
  // The engines share dedup/blocklist/admission; reply streams differ
  // (sequential mt19937 vs per-(addr, attempt) splitmix64), so hit
  // counts are NOT compared.
  EXPECT_EQ(stream_result.stats.targets, batch_result.stats.targets);
  EXPECT_EQ(stream_result.stats.deduped, batch_result.stats.deduped);
  EXPECT_EQ(stream_result.stats.blocked, batch_result.stats.blocked);
  EXPECT_EQ(stream_result.stats.probed, batch_result.stats.probed);
}

TEST(StreamScannerTest, TelemetryCountersAreShardInvariant) {
  const std::vector<Ipv6Addr> targets = mixed_targets(/*seed=*/13, 400);
  auto run_with_telemetry = [&](unsigned shards) {
    v6::obs::Telemetry telemetry;
    StreamScanner scanner(
        v6::testutil::small_universe(), nullptr,
        StreamScanOptions{}.with_shards(shards).with_scan(
            ScanOptions{}.with_seed(6).with_retries(2).with_telemetry(
                &telemetry)));
    scanner.scan_hits(targets, ProbeType::kIcmp);
    scanner.flush_telemetry();
    return telemetry.registry().snapshot();
  };
  const v6::obs::Report one = run_with_telemetry(1);
  const v6::obs::Report three = run_with_telemetry(3);
  EXPECT_GT(one.counter_value("scanner.probed"), 0u);
  EXPECT_EQ(one.counters, three.counters);
  // Gauges carry the backpressure plane, which is wall-side by
  // definition (queue high watermarks, blocked nanoseconds): those
  // `.wall` names exist only in the threaded run and are exempt from
  // shard invariance. Everything else must match.
  const auto drop_wall = [](const std::map<std::string, std::int64_t>& in) {
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, value] : in) {
      if (name.size() >= 5 &&
          name.compare(name.size() - 5, 5, ".wall") == 0) {
        continue;
      }
      out.emplace(name, value);
    }
    return out;
  };
  EXPECT_EQ(drop_wall(one.gauges), drop_wall(three.gauges));
  // And the threaded run must actually publish the plane: per-shard
  // target-queue totals plus the shared reply queue.
  EXPECT_TRUE(three.gauges.count("stream.queue.target.0.pushed.wall"));
  EXPECT_TRUE(three.gauges.count("stream.queue.target.2.hwm.wall"));
  EXPECT_TRUE(three.gauges.count("stream.queue.reply.pushed.wall"));
  EXPECT_GT(three.gauges.at("stream.queue.reply.pushed.wall"), 0);
}

TEST(StreamScannerTest, FlushTelemetryIsIdempotent) {
  const std::vector<Ipv6Addr> targets = mixed_targets(/*seed=*/13, 200);
  v6::obs::Telemetry telemetry;
  StreamScanner scanner(
      v6::testutil::small_universe(), nullptr,
      StreamScanOptions{}.with_shards(2).with_scan(
          ScanOptions{}.with_seed(6).with_retries(2).with_telemetry(
              &telemetry)));
  scanner.scan_hits(targets, ProbeType::kIcmp);
  scanner.flush_telemetry();
  const v6::obs::Report once = telemetry.registry().snapshot();
  scanner.flush_telemetry();  // second flush must not double-count
  const v6::obs::Report twice = telemetry.registry().snapshot();
  EXPECT_EQ(once.counters, twice.counters);
}

TEST(StreamScannerTest, StatsAreInternallyConsistent) {
  const std::vector<Ipv6Addr> targets = mixed_targets(/*seed=*/23, 300);
  const ScanResult result =
      run_stream(ScanOptions{}.with_seed(9).with_retries(2), 3, 50, nullptr,
                 targets);
  const ScanStats& s = result.stats;
  EXPECT_EQ(s.targets, targets.size());
  EXPECT_EQ(s.deduped + s.blocked + s.probed, s.targets);
  EXPECT_EQ(s.hits + s.rsts + s.unreachables + s.timeouts, s.probed);
  EXPECT_EQ(s.hits, result.hits.size());
  EXPECT_GE(s.packets, s.probed);
  EXPECT_GT(s.virtual_seconds, 0.0);
}

TEST(ProbeAuthTest, TokenValidatesOnlyItsOwnAddressAndSeed) {
  const Ipv6Addr addr = Ipv6Addr::must_parse("2001:db8::42");
  const Ipv6Addr other = Ipv6Addr::must_parse("2001:db8::43");
  const std::uint64_t token = v6::probe::probe_token(addr, /*seed=*/5);
  EXPECT_TRUE(v6::probe::validate_probe(addr, 5, token));
  EXPECT_FALSE(v6::probe::validate_probe(other, 5, token));
  EXPECT_FALSE(v6::probe::validate_probe(addr, 6, token));
  EXPECT_FALSE(v6::probe::validate_probe(addr, 5, token ^ 1));
  // Pure function: recomputable by any holder of the seed.
  EXPECT_EQ(token, v6::probe::probe_token(addr, 5));
}

}  // namespace
