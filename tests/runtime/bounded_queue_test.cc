// BoundedQueue (runtime/bounded_queue.h): FIFO delivery, backpressure,
// close semantics, and MPMC exactly-once delivery under the tsan preset
// (labels queue + concurrency). WorkerGroup's exception plumbing is
// covered here too — the streaming scanner leans on both.
#include "runtime/bounded_queue.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/worker_group.h"

namespace {

using v6::runtime::BoundedQueue;
using v6::runtime::WorkerGroup;

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(7));
  int v = 0;
  EXPECT_TRUE(q.pop(&v));
  EXPECT_EQ(v, 7);
}

TEST(BoundedQueueTest, WrapAroundKeepsOrder) {
  BoundedQueue<int> q(3);
  int v = -1;
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(q.push(2 * round));
    ASSERT_TRUE(q.push(2 * round + 1));
    ASSERT_TRUE(q.pop(&v));
    EXPECT_EQ(v, 2 * round);
    ASSERT_TRUE(q.pop(&v));
    EXPECT_EQ(v, 2 * round + 1);
  }
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // dropped
  int v = 0;
  EXPECT_TRUE(q.pop(&v));  // pre-close elements still delivered
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(&v));  // closed and drained
  q.close();                // idempotent
  EXPECT_FALSE(q.pop(&v));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  WorkerGroup workers;
  std::atomic<int> drained{0};
  workers.spawn([&] {
    int v = 0;
    while (q.pop(&v)) drained.fetch_add(1);
  });
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();  // consumer must drain both, then exit its loop
  workers.join();
  EXPECT_EQ(drained.load(), 2);
}

TEST(BoundedQueueTest, BackpressureBlocksProducerUntilPop) {
  BoundedQueue<std::uint64_t> q(2);
  constexpr std::uint64_t kCount = 2000;
  WorkerGroup workers;
  workers.spawn([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      ASSERT_TRUE(q.push(i));  // blocks whenever the ring is full
    }
    q.close();
  });
  std::uint64_t v = 0;
  std::uint64_t expected = 0;
  while (q.pop(&v)) {
    EXPECT_EQ(v, expected++);  // single producer → order preserved
    EXPECT_LE(q.size(), q.capacity());
  }
  workers.join();
  EXPECT_EQ(expected, kCount);
}

TEST(BoundedQueueTest, MpmcDeliversEveryElementExactlyOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 1000;
  BoundedQueue<std::uint64_t> q(4);
  std::atomic<int> live_producers{kProducers};
  std::vector<std::vector<std::uint64_t>> received(kConsumers);
  WorkerGroup workers;
  for (int p = 0; p < kProducers; ++p) {
    workers.spawn([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<std::uint64_t>(p) * kPerProducer + i));
      }
      if (live_producers.fetch_sub(1) == 1) q.close();
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    workers.spawn([&, c] {
      std::uint64_t v = 0;
      while (q.pop(&v)) received[c].push_back(v);
    });
  }
  workers.join();
  std::vector<std::uint64_t> all;
  for (const auto& chunk : received) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::uint64_t> expected(kProducers * kPerProducer);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(WorkerGroupTest, JoinRethrowsFirstExceptionInSpawnOrder) {
  WorkerGroup workers;
  workers.spawn([] { throw std::runtime_error("first"); });
  workers.spawn([] { throw std::logic_error("second"); });
  try {
    workers.join();
    FAIL() << "join() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // The group is reusable after a throwing join.
  std::atomic<bool> ran{false};
  workers.spawn([&] { ran = true; });
  workers.join();
  EXPECT_TRUE(ran.load());
}

}  // namespace
