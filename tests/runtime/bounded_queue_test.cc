// BoundedQueue (runtime/bounded_queue.h): FIFO delivery, backpressure,
// close semantics, and MPMC exactly-once delivery under the tsan preset
// (labels queue + concurrency). WorkerGroup's exception plumbing is
// covered here too — the streaming scanner leans on both.
#include "runtime/bounded_queue.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/worker_group.h"

namespace {

using v6::runtime::BoundedQueue;
using v6::runtime::WorkerGroup;

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(7));
  int v = 0;
  EXPECT_TRUE(q.pop(&v));
  EXPECT_EQ(v, 7);
}

TEST(BoundedQueueTest, WrapAroundKeepsOrder) {
  BoundedQueue<int> q(3);
  int v = -1;
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(q.push(2 * round));
    ASSERT_TRUE(q.push(2 * round + 1));
    ASSERT_TRUE(q.pop(&v));
    EXPECT_EQ(v, 2 * round);
    ASSERT_TRUE(q.pop(&v));
    EXPECT_EQ(v, 2 * round + 1);
  }
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // dropped
  int v = 0;
  EXPECT_TRUE(q.pop(&v));  // pre-close elements still delivered
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(&v));  // closed and drained
  q.close();                // idempotent
  EXPECT_FALSE(q.pop(&v));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  WorkerGroup workers;
  std::atomic<int> drained{0};
  workers.spawn([&] {
    int v = 0;
    while (q.pop(&v)) drained.fetch_add(1);
  });
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();  // consumer must drain both, then exit its loop
  workers.join();
  EXPECT_EQ(drained.load(), 2);
}

TEST(BoundedQueueTest, BackpressureBlocksProducerUntilPop) {
  BoundedQueue<std::uint64_t> q(2);
  constexpr std::uint64_t kCount = 2000;
  WorkerGroup workers;
  workers.spawn([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      ASSERT_TRUE(q.push(i));  // blocks whenever the ring is full
    }
    q.close();
  });
  std::uint64_t v = 0;
  std::uint64_t expected = 0;
  while (q.pop(&v)) {
    EXPECT_EQ(v, expected++);  // single producer → order preserved
    EXPECT_LE(q.size(), q.capacity());
  }
  workers.join();
  EXPECT_EQ(expected, kCount);
}

TEST(BoundedQueueTest, MpmcDeliversEveryElementExactlyOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 1000;
  BoundedQueue<std::uint64_t> q(4);
  std::atomic<int> live_producers{kProducers};
  std::vector<std::vector<std::uint64_t>> received(kConsumers);
  WorkerGroup workers;
  for (int p = 0; p < kProducers; ++p) {
    workers.spawn([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<std::uint64_t>(p) * kPerProducer + i));
      }
      if (live_producers.fetch_sub(1) == 1) q.close();
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    workers.spawn([&, c] {
      std::uint64_t v = 0;
      while (q.pop(&v)) received[c].push_back(v);
    });
  }
  workers.join();
  std::vector<std::uint64_t> all;
  for (const auto& chunk : received) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::uint64_t> expected(kProducers * kPerProducer);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

// ---- Backpressure totals (docs/OBSERVABILITY.md) -------------------------

TEST(BoundedQueueTest, TotalsBalanceSingleThread) {
  v6::runtime::BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(i));
  int v = 0;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.pop(&v));
  q.close();
  EXPECT_FALSE(q.push(99));  // dropped, not pushed

  const v6::runtime::QueueTotals t = q.totals();
  EXPECT_EQ(t.pushed, 4u);
  EXPECT_EQ(t.popped, 4u);
  EXPECT_EQ(t.dropped, 1u);
  EXPECT_EQ(t.high_watermark, 4u);
  // Nothing ever blocked: the contended-path clock must not have run.
  EXPECT_EQ(t.push_waits, 0u);
  EXPECT_EQ(t.pop_waits, 0u);
  EXPECT_EQ(t.blocked_push_nanos, 0u);
  EXPECT_EQ(t.blocked_pop_nanos, 0u);
}

TEST(BoundedQueueTest, BlockedTimeIsCountedOnTheContendedPath) {
  v6::runtime::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  v6::runtime::WorkerGroup workers;
  workers.spawn([&] { ASSERT_TRUE(q.push(2)); });  // blocks: queue full
  int v = 0;
  // Give the producer a chance to block, then drain.
  while (q.totals().push_waits == 0) {
  }
  ASSERT_TRUE(q.pop(&v));
  workers.join();
  ASSERT_TRUE(q.pop(&v));

  const v6::runtime::QueueTotals t = q.totals();
  EXPECT_EQ(t.pushed, 2u);
  EXPECT_EQ(t.popped, 2u);
  EXPECT_EQ(t.push_waits, 1u);
  EXPECT_EQ(t.high_watermark, 1u);
}

// The property behind the `.wall` gauges the stream scanner publishes:
// whatever the producer/consumer interleaving, lifetime totals balance
// exactly — pushed == popped after a drain, dropped counts every refusal,
// and the high watermark never exceeds capacity. Totals observe the
// traffic; they must never change it (MpmcDeliversEveryElementExactlyOnce
// above pins the element-delivery half).
TEST(BoundedQueueTest, TotalsBalanceUnderMpmcTraffic) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 5'000;
  v6::runtime::BoundedQueue<std::uint64_t> q(16);

  std::atomic<std::uint64_t> popped_count{0};
  v6::runtime::WorkerGroup workers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    workers.spawn([&] {
      std::uint64_t v;
      while (q.pop(&v)) popped_count.fetch_add(1);
    });
  }
  {
    v6::runtime::WorkerGroup producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.spawn([&, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(q.push(p * kPerProducer + i));
        }
      });
    }
    producers.join();
  }
  q.close();
  workers.join();

  const v6::runtime::QueueTotals t = q.totals();
  EXPECT_EQ(t.pushed, kProducers * kPerProducer);
  EXPECT_EQ(t.popped, kProducers * kPerProducer);
  EXPECT_EQ(t.popped, popped_count.load());
  EXPECT_EQ(t.dropped, 0u);
  EXPECT_GE(t.high_watermark, 1u);
  EXPECT_LE(t.high_watermark, q.capacity());
  // Blocked-time accounting only ever accompanies a recorded wait.
  if (t.push_waits == 0) EXPECT_EQ(t.blocked_push_nanos, 0u);
  if (t.pop_waits == 0) EXPECT_EQ(t.blocked_pop_nanos, 0u);
}

TEST(WorkerGroupTest, JoinRethrowsFirstExceptionInSpawnOrder) {
  WorkerGroup workers;
  workers.spawn([] { throw std::runtime_error("first"); });
  workers.spawn([] { throw std::logic_error("second"); });
  try {
    workers.join();
    FAIL() << "join() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // The group is reusable after a throwing join.
  std::atomic<bool> ran{false};
  workers.spawn([&] { ran = true; });
  workers.join();
  EXPECT_TRUE(ran.load());
}

}  // namespace
