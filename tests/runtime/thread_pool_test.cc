// Unit tests for the experiment-layer thread pool and parallel_for.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace v6::runtime {
namespace {

TEST(DefaultJobs, IsPositive) { EXPECT_GE(default_jobs(), 1u); }

TEST(ThreadPool, ReportsRequestedParallelism) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  ThreadPool serial(1);
  EXPECT_EQ(serial.jobs(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(3);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, PendingTasksRunBeforeShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor must drain the queue, not drop it.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  parallel_for(pool, kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SlotAssignedOutputMatchesSequential) {
  // The determinism model: each iteration writes only its own slot, so
  // the result must be identical however iterations are scheduled.
  constexpr std::size_t kN = 512;
  std::vector<std::uint64_t> sequential(kN);
  for (std::size_t i = 0; i < kN; ++i) sequential[i] = i * i + 17;

  ThreadPool pool(4);
  std::vector<std::uint64_t> parallel(kN);
  parallel_for(pool, kN, [&](std::size_t i) { parallel[i] = i * i + 17; });
  EXPECT_EQ(parallel, sequential);
}

TEST(ParallelFor, RethrowsFirstBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, std::size_t{100},
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("iteration 13");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionStillCompletesLoop) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  try {
    parallel_for(pool, std::size_t{200}, [&](std::size_t) {
      visited.fetch_add(1);
      throw std::logic_error("every iteration throws");
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error&) {
  }
  // At least one iteration ran; the pool is still usable afterwards.
  EXPECT_GE(visited.load(), 1);
  auto future = pool.submit([] { return 1; });
  EXPECT_EQ(future.get(), 1);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // Every worker (and the caller) runs an outer iteration that itself
  // calls parallel_for on the same pool. Caller participation plus the
  // inline-submit guard means this must finish even though the pool is
  // saturated.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  parallel_for(pool, kOuter, [&](std::size_t outer) {
    parallel_for(pool, kInner, [&](std::size_t inner) {
      counts[outer * kInner + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, SubmitFromWorkerRunsInline) {
  // pool(2) has exactly one worker; the outer task occupies it, so the
  // inner future can only be satisfied by the inline-submit guard.
  ThreadPool pool(2);
  auto outer = pool.submit([&] {
    EXPECT_TRUE(pool.in_worker());
    auto inner = pool.submit([&] { return 5; });
    return inner.get();
  });
  EXPECT_EQ(outer.get(), 5);
}

TEST(ParallelFor, OneShotOverloadMatchesPoolOverload) {
  constexpr std::size_t kN = 300;
  std::vector<int> a(kN), b(kN);
  parallel_for(1u, kN, [&](std::size_t i) { a[i] = static_cast<int>(i) * 3; });
  parallel_for(4u, kN, [&](std::size_t i) { b[i] = static_cast<int>(i) * 3; });
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, HandlesZeroAndOneIteration) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(pool, std::size_t{0}, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(pool, std::size_t{1}, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace v6::runtime
