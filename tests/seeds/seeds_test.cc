#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "probe/scanner.h"
#include "probe/transport.h"
#include "seeds/collector.h"
#include "seeds/overlap.h"
#include "seeds/preprocess.h"
#include "seeds/seed_dataset.h"
#include "testutil/fixtures.h"

namespace v6::seeds {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;
using v6::testutil::small_universe;

Ipv6Addr addr_n(std::uint64_t n) {
  return Ipv6Addr(0x20010db800000000ULL, n);
}

TEST(SeedDataset, AddTracksProvenance) {
  SeedDataset dataset;
  dataset.add(addr_n(1), SeedSource::kCensys);
  dataset.add(addr_n(1), SeedSource::kRapid7);
  dataset.add(addr_n(2), SeedSource::kScamper);

  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.sources_of(addr_n(1)),
            source_bit(SeedSource::kCensys) | source_bit(SeedSource::kRapid7));
  EXPECT_EQ(dataset.sources_of(addr_n(2)), source_bit(SeedSource::kScamper));
  EXPECT_EQ(dataset.sources_of(addr_n(3)), 0u);
  EXPECT_TRUE(dataset.contains(addr_n(1)));
  EXPECT_FALSE(dataset.contains(addr_n(3)));
}

TEST(SeedDataset, AddIsIdempotentPerSource) {
  SeedDataset dataset;
  dataset.add(addr_n(1), SeedSource::kCensys);
  dataset.add(addr_n(1), SeedSource::kCensys);
  EXPECT_EQ(dataset.size(), 1u);
  EXPECT_EQ(dataset.count(SeedSource::kCensys), 1u);
}

TEST(SeedDataset, FromSourceSelectsByBit) {
  SeedDataset dataset;
  dataset.add(addr_n(1), SeedSource::kCensys);
  dataset.add(addr_n(2), SeedSource::kScamper);
  dataset.add(addr_n(3), SeedSource::kCensys);
  const auto censys = dataset.from_source(SeedSource::kCensys);
  EXPECT_EQ(censys.size(), 2u);
  EXPECT_EQ(dataset.count(SeedSource::kScamper), 1u);
}

TEST(SourceMeta, CategoriesMatchPaperTable3) {
  EXPECT_EQ(category(SeedSource::kCensys), SourceCategory::kDomain);
  EXPECT_EQ(category(SeedSource::kScamper), SourceCategory::kRouter);
  EXPECT_EQ(category(SeedSource::kRipeAtlas), SourceCategory::kRouter);
  EXPECT_EQ(category(SeedSource::kHitlist), SourceCategory::kBoth);
  EXPECT_EQ(category(SeedSource::kAddrMiner), SourceCategory::kBoth);
}

TEST(SeedCollector, Deterministic) {
  const SeedCollector collector(small_universe(), 42);
  const auto a = collector.collect(SeedSource::kCensys);
  const auto b = collector.collect(SeedSource::kCensys);
  EXPECT_EQ(a, b);
}

TEST(SeedCollector, DifferentSeedsDiffer) {
  const SeedCollector a(small_universe(), 1);
  const SeedCollector b(small_universe(), 2);
  EXPECT_NE(a.collect(SeedSource::kCensys), b.collect(SeedSource::kCensys));
}

class CollectorPerSource : public ::testing::TestWithParam<SeedSource> {};

TEST_P(CollectorPerSource, ProducesAddresses) {
  const SeedCollector collector(small_universe(), 42);
  const auto addrs = collector.collect(GetParam());
  EXPECT_FALSE(addrs.empty()) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSources, CollectorPerSource,
    ::testing::ValuesIn(kAllSeedSources.begin(), kAllSeedSources.end()),
    [](const auto& info) {
      std::string name{to_string(info.param)};
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(SeedCollector, TracerouteSourcesSkewToRouters) {
  const auto& universe = small_universe();
  const SeedCollector collector(universe, 42);
  auto router_fraction = [&](SeedSource source) {
    const auto addrs = collector.collect(source);
    std::size_t routers = 0;
    std::size_t known = 0;
    for (const Ipv6Addr& a : addrs) {
      const auto* host = universe.host(a);
      if (host == nullptr) continue;
      ++known;
      if (host->kind == v6::simnet::HostKind::kRouter) ++routers;
    }
    return known == 0 ? 0.0
                      : static_cast<double>(routers) /
                            static_cast<double>(known);
  };
  EXPECT_GT(router_fraction(SeedSource::kScamper), 0.8);
  EXPECT_LT(router_fraction(SeedSource::kCensys), 0.1);
}

TEST(SeedCollector, AddrMinerIsAliasHeavy) {
  const auto& universe = small_universe();
  const SeedCollector collector(universe, 42);
  const auto addrs = collector.collect(SeedSource::kAddrMiner);
  std::size_t aliased = 0;
  for (const Ipv6Addr& a : addrs) {
    if (universe.is_aliased(a)) ++aliased;
  }
  EXPECT_GT(static_cast<double>(aliased) / static_cast<double>(addrs.size()),
            0.3);
}

TEST(SeedCollector, SecrankRestrictedToChinaRegionAses) {
  const auto& universe = small_universe();
  const SeedCollector collector(universe, 42);
  for (const Ipv6Addr& a : collector.collect(SeedSource::kSecrank)) {
    const auto asn = universe.asn_of(a);
    if (!asn) continue;
    const auto* info = universe.asdb().find(*asn);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->region, v6::asdb::Region::kChina) << a.to_string();
  }
}

TEST(ActivityMap, SetAndQuery) {
  ActivityMap activity;
  activity.set(addr_n(1), v6::net::service_bit(ProbeType::kIcmp));
  activity.merge_bit(addr_n(1), ProbeType::kTcp80);
  EXPECT_TRUE(activity.active_on(addr_n(1), ProbeType::kIcmp));
  EXPECT_TRUE(activity.active_on(addr_n(1), ProbeType::kTcp80));
  EXPECT_FALSE(activity.active_on(addr_n(1), ProbeType::kUdp53));
  EXPECT_TRUE(activity.active_any(addr_n(1)));
  EXPECT_FALSE(activity.active_any(addr_n(2)));
}

TEST(Preprocess, ScanActivityMatchesGroundTruth) {
  const auto& universe = small_universe();
  std::vector<Ipv6Addr> addrs;
  for (const auto& host : universe.hosts()) {
    if (universe.is_aliased(host.addr)) continue;
    addrs.push_back(host.addr);
    if (addrs.size() >= 3000) break;
  }
  v6::probe::SimTransport transport(universe, 9);
  v6::probe::Scanner scanner(transport, nullptr, {.max_retries = 1, .seed = 9});
  const ActivityMap activity = scan_activity(addrs, scanner);
  for (const Ipv6Addr& a : addrs) {
    const auto* host = universe.host(a);
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(activity.of(a), host->services) << a.to_string();
  }
}

TEST(Preprocess, FilterActiveSubsets) {
  ActivityMap activity;
  activity.set(addr_n(1), v6::net::service_bit(ProbeType::kIcmp));
  activity.set(addr_n(2), v6::net::service_bit(ProbeType::kTcp80));
  const std::vector<Ipv6Addr> addrs = {addr_n(1), addr_n(2), addr_n(3)};

  EXPECT_EQ(filter_active_any(addrs, activity).size(), 2u);
  const auto icmp = filter_active_on(addrs, activity, ProbeType::kIcmp);
  ASSERT_EQ(icmp.size(), 1u);
  EXPECT_EQ(icmp[0], addr_n(1));
}

TEST(Overlap, IpOverlapOnSyntheticDataset) {
  SeedDataset dataset;
  // Censys: {1,2,3}; Rapid7: {2,3,4}; Scamper: {5}.
  for (std::uint64_t i : {1, 2, 3}) dataset.add(addr_n(i), SeedSource::kCensys);
  for (std::uint64_t i : {2, 3, 4}) dataset.add(addr_n(i), SeedSource::kRapid7);
  dataset.add(addr_n(5), SeedSource::kScamper);

  const OverlapMatrix m = ip_overlap(dataset);
  const auto c = static_cast<std::size_t>(SeedSource::kCensys);
  const auto r = static_cast<std::size_t>(SeedSource::kRapid7);
  const auto s = static_cast<std::size_t>(SeedSource::kScamper);
  EXPECT_EQ(m.total[c], 3u);
  EXPECT_DOUBLE_EQ(m.cell[c][r], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.cell[r][c], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.cell[c][c], 1.0);
  EXPECT_DOUBLE_EQ(m.any_other[c], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.any_other[s], 0.0);
}

TEST(Overlap, FilterRestrictsPopulation) {
  SeedDataset dataset;
  for (std::uint64_t i : {1, 2, 3}) dataset.add(addr_n(i), SeedSource::kCensys);
  const OverlapMatrix m = ip_overlap(
      dataset, [](const Ipv6Addr& a) { return a.lo() != 2; });
  EXPECT_EQ(m.total[static_cast<std::size_t>(SeedSource::kCensys)], 2u);
}

TEST(Overlap, AsOverlapGroupsByAsn) {
  SeedDataset dataset;
  dataset.add(addr_n(1), SeedSource::kCensys);
  dataset.add(addr_n(2), SeedSource::kRapid7);
  dataset.add(Ipv6Addr(0x2002ULL << 48, 1), SeedSource::kRapid7);
  const auto asn_of = [](const Ipv6Addr& a) -> std::optional<std::uint32_t> {
    return a.hi() >> 48 == 0x2002 ? 200u : 100u;
  };
  const OverlapMatrix m = as_overlap(dataset, asn_of);
  const auto c = static_cast<std::size_t>(SeedSource::kCensys);
  const auto r = static_cast<std::size_t>(SeedSource::kRapid7);
  EXPECT_EQ(m.total[c], 1u);  // AS 100 only
  EXPECT_EQ(m.total[r], 2u);  // AS 100 and 200
  EXPECT_DOUBLE_EQ(m.cell[c][r], 1.0);
  EXPECT_DOUBLE_EQ(m.cell[r][c], 0.5);
}

}  // namespace
}  // namespace v6::seeds
