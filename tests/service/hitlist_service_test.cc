// End-to-end tests for the continuous hitlist service
// (src/service/hitlist_service.h): the epoch sequence is bit-identical
// across streaming-engine shard counts (the service-level restatement
// of the scan engine's shard-invariance contract), versions increment
// once per refresh, the query facade agrees with the snapshot, and
// seed deltas flow through to every roster generator.
#include "service/hitlist_service.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "net/ipv6.h"
#include "service/hitlist_store.h"
#include "service/incremental_tga.h"
#include "simnet/universe.h"
#include "simnet/universe_builder.h"
#include "simnet/universe_config.h"
#include "tga/registry.h"

namespace {

using v6::net::Ipv6Addr;
using v6::service::HitlistEpoch;
using v6::service::HitlistService;
using v6::service::SeedDelta;
using v6::service::ServiceConfig;
using v6::service::ServiceStats;

/// Each service instance ages its own universe, so every test builds a
/// fresh one from the same config — identical worlds, independent
/// mutation.
v6::simnet::Universe fresh_universe() {
  v6::simnet::UniverseConfig config;
  config.seed = 1234;
  config.num_ases = 150;
  config.host_scale = 0.12;
  return v6::simnet::UniverseBuilder::build(config);
}

std::vector<Ipv6Addr> sample_seeds(const v6::simnet::Universe& universe) {
  std::vector<Ipv6Addr> seeds;
  const auto& hosts = universe.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 4) {
    seeds.push_back(hosts[i].addr);
  }
  return seeds;
}

ServiceConfig small_config() {
  ServiceConfig config;
  config.budget_per_cycle = 4'000;
  config.age_universe = true;  // default churn model
  return config;
}

TEST(HitlistService, VersionsIncrementOncePerRefresh) {
  v6::simnet::Universe universe = fresh_universe();
  HitlistService service(universe, sample_seeds(universe), small_config());
  EXPECT_EQ(service.snapshot().version, 0u);

  for (std::uint64_t cycle = 1; cycle <= 3; ++cycle) {
    const HitlistEpoch& epoch = service.refresh_once();
    EXPECT_EQ(epoch.version, cycle);
    EXPECT_EQ(service.snapshot().version, cycle);
    EXPECT_EQ(service.stats().cycles, cycle);
  }
  EXPECT_EQ(service.store().epoch_count(), 4u);
}

TEST(HitlistService, LookupAgreesWithSnapshotContains) {
  v6::simnet::Universe universe = fresh_universe();
  const std::vector<Ipv6Addr> seeds = sample_seeds(universe);
  HitlistService service(universe, seeds, small_config());
  service.refresh_once();

  const HitlistEpoch& snap = service.snapshot();
  ASSERT_GT(snap.size(), 0u);
  for (const Ipv6Addr& addr : seeds) {
    EXPECT_EQ(service.lookup(addr), snap.contains(addr));
  }
  // A definitely-absent address.
  const Ipv6Addr absent(0xFFFF'FFFF'FFFF'FFFFull, 0x1ull);
  EXPECT_FALSE(service.lookup(absent));
  EXPECT_EQ(snap.fingerprint,
            v6::service::epoch_fingerprint(snap.version, snap.addrs));
}

TEST(HitlistService, DiscoveryBudgetIsFullyAllocatedAcrossTheRoster) {
  v6::simnet::Universe universe = fresh_universe();
  HitlistService service(universe, sample_seeds(universe), small_config());
  EXPECT_TRUE(service.last_allocation().empty());  // before any refresh

  service.refresh_once();
  const auto allocation = service.last_allocation();
  ASSERT_EQ(allocation.size(), service.roster().size());
  ASSERT_EQ(allocation.size(), v6::tga::kAllTgas.size());  // empty = all
  EXPECT_EQ(std::accumulate(allocation.begin(), allocation.end(), 0ull),
            small_config().budget_per_cycle);
}

TEST(HitlistService, SeedDeltasReachEveryRosterGenerator) {
  v6::simnet::Universe universe = fresh_universe();
  const std::vector<Ipv6Addr> seeds = sample_seeds(universe);
  HitlistService service(universe, seeds, small_config());

  SeedDelta delta;
  const auto& hosts = universe.hosts();
  for (std::size_t i = 1; i < hosts.size() && delta.added.size() < 30;
       i += 4) {
    delta.added.push_back(hosts[i].addr);
  }
  service.ingest_seeds(delta);

  // 6Hit absorbs in place; the other seven retrain.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.incremental_updates, 1u);
  EXPECT_EQ(stats.full_rebuilds, 7u);

  service.ingest_seeds(SeedDelta{});  // empty delta: untouched
  EXPECT_EQ(service.stats().full_rebuilds, 7u);
}

TEST(HitlistService, StatsAccumulateAcrossCycles) {
  v6::simnet::Universe universe = fresh_universe();
  HitlistService service(universe, sample_seeds(universe), small_config());
  service.refresh_once();
  service.refresh_once();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cycles, 2u);
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.rescans, 0u);
  EXPECT_GT(stats.discovered, 0u);
  EXPECT_GT(stats.virtual_seconds, 0.0);
}

// The service-level determinism contract: an aging universe, rescans,
// bandit allocation, and discovery scans — all of it must produce the
// byte-identical epoch sequence whether the streaming engine runs 1
// shard or 3. (Labels: service + shard, like the engine's own suite.)
TEST(HitlistService, EpochSequenceIsBitIdenticalAcrossShardCounts) {
  v6::simnet::Universe universe1 = fresh_universe();
  v6::simnet::Universe universe3 = fresh_universe();
  const std::vector<Ipv6Addr> seeds = sample_seeds(universe1);

  ServiceConfig config1 = small_config();
  config1.shards = 1;
  ServiceConfig config3 = small_config();
  config3.shards = 3;

  HitlistService service1(universe1, seeds, config1);
  HitlistService service3(universe3, seeds, config3);

  for (int cycle = 0; cycle < 4; ++cycle) {
    const HitlistEpoch& e1 = service1.refresh_once();
    const HitlistEpoch& e3 = service3.refresh_once();
    ASSERT_EQ(e1.version, e3.version);
    ASSERT_EQ(e1.fingerprint, e3.fingerprint)
        << "epoch " << e1.version << " diverged between shard counts";
    ASSERT_EQ(e1.addrs, e3.addrs);
    ASSERT_EQ(std::vector<std::uint64_t>(service1.last_allocation().begin(),
                                         service1.last_allocation().end()),
              std::vector<std::uint64_t>(service3.last_allocation().begin(),
                                         service3.last_allocation().end()));
  }

  const ServiceStats s1 = service1.stats();
  const ServiceStats s3 = service3.stats();
  EXPECT_EQ(s1.probes, s3.probes);
  EXPECT_EQ(s1.discovered, s3.discovered);
  EXPECT_EQ(s1.rescans, s3.rescans);
  EXPECT_EQ(s1.evicted, s3.evicted);
  EXPECT_EQ(s1.virtual_seconds, s3.virtual_seconds);
}

// Same seed, same config, fresh service: the whole run replays.
TEST(HitlistService, RunsAreReproducibleFromTheSeed) {
  std::vector<std::uint64_t> fingerprints;
  for (int run = 0; run < 2; ++run) {
    v6::simnet::Universe universe = fresh_universe();
    HitlistService service(universe, sample_seeds(universe), small_config());
    std::uint64_t chain = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
      chain ^= service.refresh_once().fingerprint;
    }
    fingerprints.push_back(chain);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

}  // namespace
