// Tests for the versioned hitlist store (src/service/hitlist_store.h):
// epoch lifecycle (sort/dedup/version/fingerprint at publication),
// snapshot stability across later publications, and — the reason the
// suite carries the `concurrency` label — snapshot isolation under a
// live writer. The isolation test is the one to run under the tsan
// preset: readers continuously re-verify epoch fingerprints while the
// writer publishes, so any torn read or unsynchronized publication
// shows up as a data race or a fingerprint mismatch.
#include "service/hitlist_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/ipv6.h"
#include "net/rng.h"
#include "runtime/worker_group.h"

namespace {

using v6::net::Ipv6Addr;
using v6::service::epoch_fingerprint;
using v6::service::HitlistEpoch;
using v6::service::HitlistStore;

Ipv6Addr addr(std::uint64_t lo) { return Ipv6Addr(0x2001'0db8ULL << 32, lo); }

TEST(HitlistStore, StartsWithValidEmptyRootEpoch) {
  HitlistStore store;
  const HitlistEpoch& root = store.snapshot();
  EXPECT_EQ(root.version, 0u);
  EXPECT_EQ(root.size(), 0u);
  EXPECT_EQ(root.fingerprint, epoch_fingerprint(0, root.addrs));
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.epoch_count(), 1u);
  EXPECT_FALSE(store.lookup(addr(1)));
}

TEST(HitlistStore, PublishSortsDedupsAndStampsTheEpoch) {
  HitlistStore store;
  HitlistStore::EpochBuilder builder = store.begin_epoch();
  builder.add(addr(30));
  builder.add(addr(10));
  builder.add(addr(20));
  builder.add(addr(10));  // duplicate
  EXPECT_EQ(builder.pending(), 4u);

  const HitlistEpoch& epoch = store.publish_epoch(std::move(builder));
  EXPECT_EQ(epoch.version, 1u);
  ASSERT_EQ(epoch.size(), 3u);
  EXPECT_EQ(epoch.addrs[0], addr(10));
  EXPECT_EQ(epoch.addrs[1], addr(20));
  EXPECT_EQ(epoch.addrs[2], addr(30));
  EXPECT_EQ(epoch.fingerprint, epoch_fingerprint(1, epoch.addrs));

  EXPECT_TRUE(epoch.contains(addr(20)));
  EXPECT_FALSE(epoch.contains(addr(25)));
  EXPECT_TRUE(store.lookup(addr(20)));
  EXPECT_EQ(store.epoch_count(), 2u);
}

TEST(HitlistStore, SnapshotReferencesSurviveLaterPublications) {
  HitlistStore store;
  HitlistStore::EpochBuilder first = store.begin_epoch();
  first.add(addr(1));
  const HitlistEpoch& v1 = store.publish_epoch(std::move(first));

  for (std::uint64_t lo = 2; lo <= 50; ++lo) {
    HitlistStore::EpochBuilder next = store.begin_epoch();
    next.add(addr(lo));
    store.publish_epoch(std::move(next));
  }

  // The old reference is still intact and verifiable.
  EXPECT_EQ(v1.version, 1u);
  ASSERT_EQ(v1.size(), 1u);
  EXPECT_EQ(v1.addrs[0], addr(1));
  EXPECT_EQ(v1.fingerprint, epoch_fingerprint(1, v1.addrs));

  EXPECT_EQ(store.version(), 50u);
  EXPECT_EQ(store.epoch_count(), 51u);
}

TEST(HitlistStore, FingerprintDependsOnVersionAndContents) {
  const std::vector<Ipv6Addr> addrs{addr(1), addr(2)};
  const std::vector<Ipv6Addr> other{addr(1), addr(3)};
  EXPECT_EQ(epoch_fingerprint(1, addrs), epoch_fingerprint(1, addrs));
  EXPECT_NE(epoch_fingerprint(1, addrs), epoch_fingerprint(2, addrs));
  EXPECT_NE(epoch_fingerprint(1, addrs), epoch_fingerprint(1, other));
}

// Snapshot isolation under a live writer (tsan target). Readers hold a
// snapshot, re-verify its fingerprint, and check version monotonicity
// while the writer publishes kEpochs new epochs of varying sizes. With
// the single release-store publication this is race-free; any weaker
// ordering or epoch mutation after publish is a torn fingerprint or a
// TSan report.
TEST(HitlistStore, SnapshotsAreIsolatedFromAConcurrentWriter) {
  constexpr std::uint64_t kEpochs = 200;
  constexpr int kReaders = 3;

  HitlistStore store;
  std::atomic<bool> done{false};
  v6::runtime::WorkerGroup workers;

  for (int r = 0; r < kReaders; ++r) {
    workers.spawn([&store, &done] {
      std::uint64_t last_version = 0;
      std::uint64_t observed = 0;
      while (!done.load(std::memory_order_acquire) || observed < 1) {
        const HitlistEpoch& snap = store.snapshot();
        ASSERT_EQ(snap.fingerprint,
                  epoch_fingerprint(snap.version, snap.addrs))
            << "torn epoch at version " << snap.version;
        ASSERT_GE(snap.version, last_version);
        // The epoch's contents must match what the writer publishes for
        // that version: lo values [0, version).
        ASSERT_EQ(snap.size(), snap.version);
        last_version = snap.version;
        ++observed;
      }
    });
  }

  for (std::uint64_t v = 1; v <= kEpochs; ++v) {
    HitlistStore::EpochBuilder builder = store.begin_epoch();
    for (std::uint64_t lo = 0; lo < v; ++lo) builder.add(addr(lo));
    const HitlistEpoch& published = store.publish_epoch(std::move(builder));
    ASSERT_EQ(published.version, v);
  }
  done.store(true, std::memory_order_release);
  workers.join();

  EXPECT_EQ(store.version(), kEpochs);
  EXPECT_EQ(store.epoch_count(), kEpochs + 1);
}

}  // namespace
