// Tests for the incremental TGA adapter (src/service/incremental_tga.h):
// which deltas fold in place (6Hit's absorb_seeds) vs force a full
// retrain (removals, models without incremental support), the merged
// seed-list bookkeeping, and the emitted-set preservation that makes
// the incremental path worth having — an absorbed delta must not cause
// the generator to re-emit candidates it already produced.
#include "service/incremental_tga.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "net/ipv6.h"
#include "simnet/universe.h"
#include "testutil/fixtures.h"
#include "tga/registry.h"

namespace {

using v6::net::Ipv6Addr;
using v6::service::IncrementalTargetGenerator;
using v6::service::SeedDelta;
using v6::tga::TgaKind;

/// A deterministic slice of the shared universe's hosts: realistic
/// prefix structure, no synthetic-address corner cases.
std::vector<Ipv6Addr> universe_seeds(std::size_t skip, std::size_t count) {
  const auto& hosts = v6::testutil::small_universe().hosts();
  std::vector<Ipv6Addr> seeds;
  seeds.reserve(count);
  for (std::size_t i = skip; i < hosts.size() && seeds.size() < count; ++i) {
    seeds.push_back(hosts[i].addr);
  }
  return seeds;
}

TEST(IncrementalTga, SixHitAbsorbsAdditionOnlyDeltas) {
  IncrementalTargetGenerator tga(TgaKind::kSixHit, /*rng_seed=*/7);
  tga.prepare(universe_seeds(0, 200));

  SeedDelta delta;
  delta.added = universe_seeds(200, 40);
  tga.ingest(delta);

  EXPECT_EQ(tga.incremental_updates(), 1u);
  EXPECT_EQ(tga.full_rebuilds(), 0u);
  EXPECT_EQ(tga.seeds().size(), 240u);
}

TEST(IncrementalTga, ModelsWithoutIncrementalSupportFallBackToRebuild) {
  IncrementalTargetGenerator tga(TgaKind::kDet, /*rng_seed=*/7);
  tga.prepare(universe_seeds(0, 200));

  SeedDelta delta;
  delta.added = universe_seeds(200, 40);
  tga.ingest(delta);

  EXPECT_EQ(tga.incremental_updates(), 0u);
  EXPECT_EQ(tga.full_rebuilds(), 1u);
  EXPECT_EQ(tga.seeds().size(), 240u);
}

TEST(IncrementalTga, RemovalsAlwaysForceARebuild) {
  IncrementalTargetGenerator tga(TgaKind::kSixHit, /*rng_seed=*/7);
  const std::vector<Ipv6Addr> seeds = universe_seeds(0, 200);
  tga.prepare(seeds);

  SeedDelta delta;
  delta.removed = {seeds[0], seeds[1]};
  delta.added = universe_seeds(200, 10);  // rides along in the retrain
  tga.ingest(delta);

  EXPECT_EQ(tga.incremental_updates(), 0u);
  EXPECT_EQ(tga.full_rebuilds(), 1u);
  EXPECT_EQ(tga.seeds().size(), 208u);
  const auto merged = tga.seeds();
  EXPECT_EQ(std::find(merged.begin(), merged.end(), seeds[0]), merged.end());
}

TEST(IncrementalTga, DuplicateAdditionsAndUnknownRemovalsAreNoOps) {
  IncrementalTargetGenerator tga(TgaKind::kSixHit, /*rng_seed=*/7);
  const std::vector<Ipv6Addr> seeds = universe_seeds(0, 200);
  tga.prepare(seeds);

  SeedDelta delta;
  delta.added = {seeds[3], seeds[4]};               // already known
  delta.removed = {universe_seeds(500, 1).front()};  // never a seed
  tga.ingest(delta);

  EXPECT_EQ(tga.incremental_updates(), 0u);
  EXPECT_EQ(tga.full_rebuilds(), 0u);
  EXPECT_EQ(tga.seeds().size(), 200u);

  tga.ingest(SeedDelta{});  // literally empty
  EXPECT_EQ(tga.incremental_updates(), 0u);
  EXPECT_EQ(tga.full_rebuilds(), 0u);
}

TEST(IncrementalTga, PrepareResetsTheIngestStatistics) {
  IncrementalTargetGenerator tga(TgaKind::kSixHit, /*rng_seed=*/7);
  tga.prepare(universe_seeds(0, 200));
  SeedDelta delta;
  delta.added = universe_seeds(200, 20);
  tga.ingest(delta);
  ASSERT_EQ(tga.incremental_updates(), 1u);

  tga.prepare(universe_seeds(0, 100));
  EXPECT_EQ(tga.incremental_updates(), 0u);
  EXPECT_EQ(tga.full_rebuilds(), 0u);
  EXPECT_EQ(tga.seeds().size(), 100u);
}

// The point of absorb_seeds: the emitted set survives the delta, so
// candidates generated before the ingest are never produced again
// after it. (A full retrain wipes the emitted set — that is exactly
// the re-probing waste the incremental path avoids.)
TEST(IncrementalTga, AbsorbedDeltasDoNotCauseReEmission) {
  IncrementalTargetGenerator tga(TgaKind::kSixHit, /*rng_seed=*/7);
  tga.prepare(universe_seeds(0, 200));

  const std::vector<Ipv6Addr> before = tga.generator().next_batch(500);
  ASSERT_FALSE(before.empty());

  SeedDelta delta;
  delta.added = universe_seeds(200, 40);
  tga.ingest(delta);
  ASSERT_EQ(tga.incremental_updates(), 1u);

  const std::vector<Ipv6Addr> after = tga.generator().next_batch(500);
  const std::unordered_set<Ipv6Addr, v6::net::Ipv6AddrHash> seen(
      before.begin(), before.end());
  for (const Ipv6Addr& addr : after) {
    EXPECT_FALSE(seen.contains(addr))
        << "re-emitted a candidate from before the ingest";
  }
}

}  // namespace
