// Tests for the churn-aware scheduling layer
// (src/service/rescan_scheduler.h): rescan due-ness and eviction
// semantics of RescanScheduler, and the determinism contract of
// BanditAllocator — the allocation sequence is a pure function of
// (seed, reward history), shares always sum to the budget, and the
// explore floor is honored for every arm.
#include "service/rescan_scheduler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "net/ipv6.h"

namespace {

using v6::net::Ipv6Addr;
using v6::service::BanditAllocator;
using v6::service::RescanPolicy;
using v6::service::RescanScheduler;

Ipv6Addr addr(std::uint64_t lo) { return Ipv6Addr(0x2001'0db8ULL << 32, lo); }

TEST(RescanScheduler, TrackedAddressesAreDueImmediately) {
  RescanScheduler scheduler(RescanPolicy{});
  scheduler.track(addr(2));
  scheduler.track(addr(1));
  scheduler.track(addr(2));  // idempotent
  EXPECT_EQ(scheduler.tracked(), 2u);

  const std::vector<Ipv6Addr> due = scheduler.due(/*cycle=*/1);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], addr(1));  // sorted address order
  EXPECT_EQ(due[1], addr(2));
}

TEST(RescanScheduler, RescanIntervalGatesDueness) {
  RescanPolicy policy;
  policy.rescan_interval = 3;
  RescanScheduler scheduler(policy);
  scheduler.track(addr(1));

  scheduler.note_result(addr(1), /*responsive=*/true, /*cycle=*/1);
  EXPECT_TRUE(scheduler.due(2).empty());
  EXPECT_TRUE(scheduler.due(3).empty());
  EXPECT_EQ(scheduler.due(4).size(), 1u);  // 1 + interval
}

TEST(RescanScheduler, ResponsiveSetTracksLatestResults) {
  RescanScheduler scheduler(RescanPolicy{});
  scheduler.note_result(addr(5), true, 1);  // discovery path auto-tracks
  scheduler.note_result(addr(6), true, 1);
  ASSERT_EQ(scheduler.responsive().size(), 2u);

  scheduler.note_result(addr(5), false, 2);
  const std::vector<Ipv6Addr> responsive = scheduler.responsive();
  ASSERT_EQ(responsive.size(), 1u);
  EXPECT_EQ(responsive[0], addr(6));
}

TEST(RescanScheduler, EvictsAfterMaxMissStreak) {
  RescanPolicy policy;
  policy.max_miss_streak = 2;
  RescanScheduler scheduler(policy);
  scheduler.track(addr(1));   // never probed: must NOT be evicted
  scheduler.note_result(addr(2), true, 1);

  scheduler.note_result(addr(2), false, 2);
  EXPECT_EQ(scheduler.evict_churned(), 0u);  // streak 1 < 2

  scheduler.note_result(addr(2), false, 3);
  EXPECT_EQ(scheduler.evict_churned(), 1u);
  EXPECT_FALSE(scheduler.contains(addr(2)));
  EXPECT_TRUE(scheduler.contains(addr(1)));

  // A hit resets the streak: no eviction after recovering.
  scheduler.note_result(addr(3), false, 4);
  scheduler.note_result(addr(3), true, 5);
  scheduler.note_result(addr(3), false, 6);
  EXPECT_EQ(scheduler.evict_churned(), 0u);
}

TEST(BanditAllocator, SharesAlwaysSumToTheBudget) {
  BanditAllocator bandit(/*arms=*/8, /*seed=*/42, /*explore_floor=*/0.1);
  for (const std::uint64_t budget : {1ull, 7ull, 100ull, 40'000ull}) {
    const std::vector<std::uint64_t> shares = bandit.allocate(budget);
    ASSERT_EQ(shares.size(), 8u);
    EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), 0ull), budget);
  }
}

TEST(BanditAllocator, ExploreFloorGuaranteesEveryArmItsShare) {
  BanditAllocator bandit(/*arms=*/4, /*seed=*/42, /*explore_floor=*/0.2);
  // Make arm 0 look hopeless; the floor must still feed it.
  bandit.reward(0, /*probes=*/10'000, /*hits=*/0);
  bandit.reward(1, /*probes=*/10'000, /*hits=*/9'000);
  const std::vector<std::uint64_t> shares = bandit.allocate(1'000);
  for (const std::uint64_t share : shares) EXPECT_GE(share, 200u);
}

TEST(BanditAllocator, RewardsSteerTheRemainderTowardBetterArms) {
  BanditAllocator bandit(/*arms=*/2, /*seed=*/42, /*explore_floor=*/0.1);
  bandit.reward(0, 1'000, 900);
  bandit.reward(1, 1'000, 10);
  EXPECT_GT(bandit.score(0), bandit.score(1));
  const std::vector<std::uint64_t> shares = bandit.allocate(10'000);
  EXPECT_GT(shares[0], shares[1]);
}

// The determinism contract the service's bit-identity rests on: two
// allocators with the same seed, fed the same reward history, emit the
// same budget sequence — allocation after allocation.
TEST(BanditAllocator, BudgetSequenceIsDeterministicPerSeed) {
  BanditAllocator a(/*arms=*/8, /*seed=*/42, /*explore_floor=*/0.05);
  BanditAllocator b(/*arms=*/8, /*seed=*/42, /*explore_floor=*/0.05);

  std::uint64_t reward_state = 1;
  for (int cycle = 0; cycle < 50; ++cycle) {
    const std::vector<std::uint64_t> sa = a.allocate(40'000);
    const std::vector<std::uint64_t> sb = b.allocate(40'000);
    ASSERT_EQ(sa, sb) << "allocation diverged at cycle " << cycle;
    for (std::size_t arm = 0; arm < sa.size(); ++arm) {
      // A deterministic, arm-dependent pseudo-history.
      reward_state = reward_state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t hits = reward_state % (sa[arm] + 1);
      a.reward(arm, sa[arm], hits);
      b.reward(arm, sb[arm], hits);
    }
  }
}

}  // namespace
