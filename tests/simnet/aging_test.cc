#include <gtest/gtest.h>

#include "simnet/universe_builder.h"

namespace v6::simnet {
namespace {

Universe build_small(std::uint64_t seed) {
  UniverseConfig config;
  config.seed = seed;
  config.num_ases = 100;
  config.host_scale = 0.1;
  return UniverseBuilder::build(config);
}

TEST(Aging, KillsAndRevivesHostsDeterministically) {
  Universe a = build_small(5);
  Universe b = build_small(5);
  const AgingConfig aging{.seed = 9};
  UniverseBuilder::age(a, aging);
  UniverseBuilder::age(b, aging);
  ASSERT_EQ(a.hosts().size(), b.hosts().size());
  for (std::size_t i = 0; i < a.hosts().size(); ++i) {
    EXPECT_EQ(a.hosts()[i].addr, b.hosts()[i].addr);
    EXPECT_EQ(a.hosts()[i].services, b.hosts()[i].services);
  }
}

TEST(Aging, DeathRateApproximatesConfig) {
  Universe universe = build_small(6);
  const std::size_t active_before = universe.active_host_count_any();
  AgingConfig aging;
  aging.seed = 3;
  aging.death_prob = 0.2;
  aging.subnet_death_prob = 0.0;
  aging.revival_prob = 0.0;
  aging.birth_prob = 0.0;
  aging.service_loss_prob = 0.0;
  UniverseBuilder::age(universe, aging);
  const std::size_t active_after = universe.active_host_count_any();
  ASSERT_GT(active_before, 0u);
  const double death_rate =
      1.0 - static_cast<double>(active_after) /
                static_cast<double>(active_before);
  EXPECT_NEAR(death_rate, 0.2, 0.03);
}

TEST(Aging, RevivalBringsChurnedHostsBack) {
  Universe universe = build_small(7);
  std::size_t churned_before = 0;
  for (const HostRecord& host : universe.hosts()) {
    if (host.churned()) ++churned_before;
  }
  ASSERT_GT(churned_before, 0u);
  AgingConfig aging;
  aging.seed = 4;
  aging.death_prob = 0.0;
  aging.subnet_death_prob = 0.0;
  aging.service_loss_prob = 0.0;
  aging.revival_prob = 1.0;
  aging.birth_prob = 0.0;
  UniverseBuilder::age(universe, aging);
  for (const HostRecord& host : universe.hosts()) {
    EXPECT_FALSE(host.churned()) << host.addr.to_string();
  }
}

TEST(Aging, BirthsAddIndexedHosts) {
  Universe universe = build_small(8);
  const std::size_t before = universe.hosts().size();
  AgingConfig aging;
  aging.seed = 5;
  aging.death_prob = 0.0;
  aging.subnet_death_prob = 0.0;
  aging.service_loss_prob = 0.0;
  aging.revival_prob = 0.0;
  aging.birth_prob = 0.5;
  UniverseBuilder::age(universe, aging);
  EXPECT_GT(universe.hosts().size(), before);
  // New hosts are reachable through the index (probing them works).
  v6::net::Rng rng(1);
  for (std::size_t i = before; i < universe.hosts().size(); ++i) {
    const HostRecord& born = universe.hosts()[i];
    ASSERT_NE(universe.host(born.addr), nullptr);
    if (v6::net::has_service(born.services, v6::net::ProbeType::kIcmp)) {
      EXPECT_EQ(universe.probe(born.addr, v6::net::ProbeType::kIcmp, rng),
                v6::net::ProbeReply::kEchoReply);
    }
  }
}

TEST(Aging, ServiceLossRemovesOneService) {
  Universe universe = build_small(9);
  // Count multi-service hosts, age with only service-loss enabled, and
  // verify total service bits decreased but no host died outright.
  const std::size_t active_before = universe.active_host_count_any();
  std::size_t bits_before = 0;
  for (const HostRecord& host : universe.hosts()) {
    bits_before += static_cast<std::size_t>(__builtin_popcount(host.services));
  }
  AgingConfig aging;
  aging.seed = 6;
  aging.death_prob = 0.0;
  aging.subnet_death_prob = 0.0;
  aging.service_loss_prob = 0.3;
  aging.revival_prob = 0.0;
  aging.birth_prob = 0.0;
  UniverseBuilder::age(universe, aging);
  std::size_t bits_after = 0;
  for (const HostRecord& host : universe.hosts()) {
    bits_after += static_cast<std::size_t>(__builtin_popcount(host.services));
  }
  EXPECT_LT(bits_after, bits_before);
  // Hosts whose only service was withdrawn count as dead; some loss of
  // active hosts is expected but far below the service-loss rate.
  EXPECT_GT(universe.active_host_count_any(), active_before * 8 / 10);
}

TEST(Aging, MultipleEpochsCompound) {
  Universe universe = build_small(10);
  const std::size_t start = universe.active_host_count_any();
  AgingConfig aging;
  aging.death_prob = 0.15;
  aging.subnet_death_prob = 0.0;
  aging.revival_prob = 0.0;
  aging.birth_prob = 0.0;
  aging.service_loss_prob = 0.0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    aging.seed = 100 + static_cast<std::uint64_t>(epoch);
    UniverseBuilder::age(universe, aging);
  }
  const double survival = static_cast<double>(
                              universe.active_host_count_any()) /
                          static_cast<double>(start);
  EXPECT_NEAR(survival, 0.85 * 0.85 * 0.85, 0.05);
}

}  // namespace
}  // namespace v6::simnet
