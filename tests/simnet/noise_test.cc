// Wire-noise semantics: the reply classes that are NOT hits still have
// to be emitted realistically, because the scanner's classification
// logic (and the paper's hit rules) exist to filter them.
#include <gtest/gtest.h>

#include "net/rng.h"
#include "testutil/fixtures.h"

namespace v6::simnet {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;
using v6::testutil::small_universe;

TEST(WireNoise, UdpToNonDnsHostMayDrawPortUnreachable) {
  const Universe& u = small_universe();
  v6::net::Rng rng(1);
  int unreachable = 0;
  int checked = 0;
  for (const HostRecord& host : u.hosts()) {
    if (u.is_aliased(host.addr) || host.services == 0) continue;
    if (v6::net::has_service(host.services, ProbeType::kUdp53)) continue;
    const ProbeReply reply = u.probe(host.addr, ProbeType::kUdp53, rng);
    EXPECT_NE(reply, ProbeReply::kUdpReply);
    if (reply == ProbeReply::kDestUnreachable) ++unreachable;
    if (++checked >= 2000) break;
  }
  ASSERT_GT(checked, 100);
  // Roughly half of live hosts send ICMP port unreachable.
  EXPECT_GT(unreachable, checked / 4);
  EXPECT_LT(unreachable, checked * 3 / 4);
}

TEST(WireNoise, RoutedUnusedSpaceDrawsOccasionalUnreachable) {
  const Universe& u = small_universe();
  v6::net::Rng rng(2);
  // Random addresses deep inside announced prefixes: almost surely no
  // host there.
  int unreachable = 0;
  constexpr int kProbes = 5000;
  const auto& announcements = u.routes().announcements();
  for (int i = 0; i < kProbes; ++i) {
    const auto& [prefix, asn] =
        announcements[static_cast<std::size_t>(i) % announcements.size()];
    Ipv6Addr addr = v6::net::random_in_prefix(rng, prefix);
    if (u.host(addr) != nullptr || u.is_aliased(addr) ||
        u.in_dense_region(addr)) {
      continue;
    }
    const ProbeReply reply = u.probe(addr, ProbeType::kIcmp, rng);
    EXPECT_NE(reply, ProbeReply::kEchoReply) << addr.to_string();
    if (reply == ProbeReply::kDestUnreachable) ++unreachable;
  }
  // Matches the configured background probability within slack.
  const double rate = static_cast<double>(unreachable) / kProbes;
  EXPECT_NEAR(rate, u.config().background_unreachable_prob, 0.01);
}

TEST(WireNoise, BackgroundRepliesAreStablePerAddress) {
  // The same unused address must answer the same way every time, or
  // scanner retries would change classifications nondeterministically.
  const Universe& u = small_universe();
  v6::net::Rng rng(3);
  const auto& [prefix, asn] = u.routes().announcements().front();
  for (int trial = 0; trial < 50; ++trial) {
    Ipv6Addr addr = v6::net::random_in_prefix(rng, prefix);
    if (u.host(addr) != nullptr || u.is_aliased(addr) ||
        u.in_dense_region(addr)) {
      continue;
    }
    const ProbeReply first = u.probe(addr, ProbeType::kIcmp, rng);
    for (int repeat = 0; repeat < 5; ++repeat) {
      EXPECT_EQ(u.probe(addr, ProbeType::kIcmp, rng), first);
    }
  }
}

TEST(WireNoise, AliasedRegionClosedServiceNeverYieldsHit) {
  // Alias regions without UDP53 must not answer DNS probes positively
  // (the aliased device's closed service times out for UDP).
  const Universe& u = small_universe();
  v6::net::Rng rng(4);
  int checked = 0;
  for (const AliasRegion& region : u.alias_regions()) {
    if (v6::net::has_service(region.services, ProbeType::kUdp53)) continue;
    const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
    EXPECT_EQ(u.probe(addr, ProbeType::kUdp53, rng), ProbeReply::kTimeout)
        << region.prefix.to_string();
    ++checked;
  }
  EXPECT_GT(checked, 0) << "universe should contain non-UDP alias regions";
}

}  // namespace
}  // namespace v6::simnet
