// Differential battery: a procedural universe and its materialized twin
// built from the same UniverseConfig must be indistinguishable — same
// host population in the same canonical order, same O(1) lookups, same
// probe replies under both URBG engines, same ground-truth queries, and
// same summary counts. This is the proof obligation that lets every
// consumer (seed synthesis, scanners, evaluation) treat the two
// representations as one universe (docs/SCALE.md).
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "net/rng.h"
#include "net/service.h"
#include "probe/stateless_transport.h"
#include "probe/transport.h"
#include "simnet/universe.h"
#include "simnet/universe_builder.h"

namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;
using v6::simnet::HostRecord;
using v6::simnet::Universe;
using v6::simnet::UniverseBuilder;
using v6::simnet::UniverseConfig;

UniverseConfig base_config() {
  UniverseConfig config;
  config.seed = 777;
  config.num_ases = 120;
  config.host_scale = 0.2;
  config.dense_region_prefix_len = 52;
  config.procedural = true;
  return config;
}

/// Same structure with every host-level fault source enabled, so the
/// rate-limit/loss draws in probe() are exercised too.
UniverseConfig faulted_config() {
  UniverseConfig config = base_config();
  config.seed = 778;
  config.host_rate_limited_fraction = 0.25;
  config.host_rate_limited_response_prob = 0.4;
  config.host_loss_prob = 0.05;
  return config;
}

std::vector<HostRecord> collect_hosts(const Universe& u) {
  std::vector<HostRecord> out;
  u.for_each_host([&out](const HostRecord& h) { out.push_back(h); });
  return out;
}

void expect_same_record(const HostRecord& a, const HostRecord& b) {
  EXPECT_EQ(a.addr, b.addr);
  EXPECT_EQ(a.asn, b.asn);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.services, b.services);
  EXPECT_EQ(a.historic_services, b.historic_services);
  EXPECT_EQ(a.popular, b.popular);
  EXPECT_EQ(a.rate_limited, b.rate_limited);
}

/// A probe-order worth of addresses: every host address plus structured
/// perturbations of it (neighbours, cleared low bits, flipped site
/// bits) — the near-misses a TGA-driven scan actually sends — plus
/// uniform random addresses inside announced space.
std::vector<Ipv6Addr> probe_targets(const Universe& u, std::uint64_t seed) {
  std::vector<Ipv6Addr> targets;
  u.for_each_host([&targets](const HostRecord& h) {
    targets.push_back(h.addr);
    targets.push_back(Ipv6Addr(h.addr.hi(), h.addr.lo() + 1));
    targets.push_back(Ipv6Addr(h.addr.hi(), h.addr.lo() ^ 0x8000));
    targets.push_back(Ipv6Addr(h.addr.hi() ^ 0x1, h.addr.lo()));
  });
  v6::net::Rng rng = v6::net::make_rng(seed, /*tag=*/0xD1FF);
  const auto& announcements = u.routes().announcements();
  for (int i = 0; i < 2000 && !announcements.empty(); ++i) {
    const auto& [prefix, asn] = announcements[v6::net::uniform_int<
        std::size_t>(rng, 0, announcements.size() - 1)];
    (void)asn;
    targets.push_back(v6::net::random_in_prefix(rng, prefix));
  }
  return targets;
}

class ProceduralEquivalenceTest : public ::testing::TestWithParam<bool> {
 protected:
  UniverseConfig config() const {
    return GetParam() ? faulted_config() : base_config();
  }
};

INSTANTIATE_TEST_SUITE_P(Configs, ProceduralEquivalenceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Faulted" : "Default";
                         });

TEST_P(ProceduralEquivalenceTest, HostPopulationsIdentical) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);
  ASSERT_TRUE(proc.procedural());
  ASSERT_FALSE(mat.procedural());

  const std::vector<HostRecord> ph = collect_hosts(proc);
  const std::vector<HostRecord> mh = collect_hosts(mat);
  ASSERT_GT(ph.size(), 1000u);
  ASSERT_EQ(ph.size(), mh.size());
  for (std::size_t i = 0; i < ph.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_record(ph[i], mh[i]);
    if (ph[i].addr != mh[i].addr) break;  // avoid cascading noise
  }
  // The materialized twin's span agrees with its own enumeration (the
  // canonical order *is* insertion order).
  ASSERT_EQ(mh.size(), mat.hosts().size());
}

TEST_P(ProceduralEquivalenceTest, LookupMatchesEnumeration) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);

  std::size_t checked = 0;
  mat.for_each_host([&](const HostRecord& expected) {
    HostRecord got;
    ASSERT_TRUE(proc.lookup_host(expected.addr, got))
        << "host missing procedurally: " << checked;
    expect_same_record(got, expected);
    ++checked;
  });
  EXPECT_GT(checked, 1000u);
}

TEST_P(ProceduralEquivalenceTest, MembershipAgreesOnArbitraryAddresses) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);

  std::size_t present = 0;
  for (const Ipv6Addr& addr : probe_targets(mat, cfg.seed)) {
    HostRecord a;
    HostRecord b;
    const bool in_proc = proc.lookup_host(addr, a);
    const bool in_mat = mat.lookup_host(addr, b);
    ASSERT_EQ(in_proc, in_mat) << "membership divergence";
    if (in_proc) {
      expect_same_record(a, b);
      ++present;
    }
  }
  EXPECT_GT(present, 0u);
}

TEST_P(ProceduralEquivalenceTest, ProbeRepliesIdenticalMt19937) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);
  const std::vector<Ipv6Addr> targets = probe_targets(mat, cfg.seed);

  for (const ProbeType type : v6::net::kAllProbeTypes) {
    // Identical engines: replies must match draw for draw, so any
    // stochastic divergence would desynchronize the streams and show up
    // immediately.
    v6::net::Rng rng_a = v6::net::make_rng(cfg.seed, /*tag=*/0x9E9E);
    v6::net::Rng rng_b = v6::net::make_rng(cfg.seed, /*tag=*/0x9E9E);
    for (const Ipv6Addr& addr : targets) {
      const ProbeReply a = proc.probe(addr, type, rng_a);
      const ProbeReply b = mat.probe(addr, type, rng_b);
      ASSERT_EQ(a, b) << "probe divergence, type "
                      << static_cast<int>(type);
    }
    ASSERT_EQ(rng_a(), rng_b()) << "engines desynchronized";
  }
}

TEST_P(ProceduralEquivalenceTest, ProbeRepliesIdenticalSplitMix) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);
  const std::vector<Ipv6Addr> targets = probe_targets(mat, cfg.seed);

  for (const ProbeType type : v6::net::kAllProbeTypes) {
    for (const Ipv6Addr& addr : targets) {
      // Per-probe engines keyed the way the streaming scanner keys them.
      v6::net::SplitMixRng rng_a(
          v6::net::splitmix64(addr.hi() ^ addr.lo() ^ cfg.seed));
      v6::net::SplitMixRng rng_b(
          v6::net::splitmix64(addr.hi() ^ addr.lo() ^ cfg.seed));
      ASSERT_EQ(proc.probe(addr, type, rng_a), mat.probe(addr, type, rng_b));
    }
  }
}

TEST_P(ProceduralEquivalenceTest, GroundTruthQueriesAgree) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);

  for (const Ipv6Addr& addr : probe_targets(mat, cfg.seed)) {
    ASSERT_EQ(proc.is_aliased(addr), mat.is_aliased(addr));
    ASSERT_EQ(proc.in_dense_region(addr), mat.in_dense_region(addr));
    ASSERT_EQ(proc.asn_of(addr), mat.asn_of(addr));
    for (const ProbeType type : v6::net::kAllProbeTypes) {
      ASSERT_EQ(proc.host_active(addr, type), mat.host_active(addr, type));
    }
  }
}

TEST_P(ProceduralEquivalenceTest, SummaryCountsAgree) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);

  EXPECT_EQ(proc.host_count(), mat.host_count());
  EXPECT_EQ(proc.active_host_count_any(), mat.active_host_count_any());
  for (const ProbeType type : v6::net::kAllProbeTypes) {
    EXPECT_EQ(proc.active_host_count(type), mat.active_host_count(type));
  }
  EXPECT_EQ(proc.alias_regions().size(), mat.alias_regions().size());
  EXPECT_EQ(proc.asdb().all().size(), mat.asdb().all().size());
  EXPECT_EQ(proc.routes().announcements().size(),
            mat.routes().announcements().size());
}

TEST_P(ProceduralEquivalenceTest, StatelessTransportParity) {
  const UniverseConfig cfg = config();
  const Universe proc = UniverseBuilder::build(cfg);
  const Universe mat = UniverseBuilder::materialize(cfg);
  const std::vector<Ipv6Addr> targets = probe_targets(mat, cfg.seed);

  // The streaming scanner's transport: replies are a pure function of
  // (seed, addr, attempt), so parity here transfers to any scan order.
  v6::probe::StatelessSimTransport ta(proc, /*seed=*/99);
  v6::probe::StatelessSimTransport tb(mat, /*seed=*/99);
  for (const Ipv6Addr& addr : targets) {
    ASSERT_EQ(ta.send(addr, ProbeType::kIcmp), tb.send(addr, ProbeType::kIcmp));
    // A retransmission to the same address draws an independent coin.
    ASSERT_EQ(ta.send(addr, ProbeType::kIcmp), tb.send(addr, ProbeType::kIcmp));
  }
  EXPECT_EQ(ta.packets_sent(), tb.packets_sent());
}

TEST(ProceduralDeterminismTest, RebuildIsBitIdentical) {
  const UniverseConfig cfg = base_config();
  const Universe a = UniverseBuilder::build(cfg);
  const Universe b = UniverseBuilder::build(cfg);
  const std::vector<HostRecord> ha = collect_hosts(a);
  const std::vector<HostRecord> hb = collect_hosts(b);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    expect_same_record(ha[i], hb[i]);
    if (ha[i].addr != hb[i].addr) break;
  }
  EXPECT_EQ(a.active_host_count_any(), b.active_host_count_any());
}

TEST(ProceduralDeterminismTest, SeedChangesPopulation) {
  UniverseConfig cfg = base_config();
  const Universe a = UniverseBuilder::build(cfg);
  cfg.seed = 1777;
  const Universe b = UniverseBuilder::build(cfg);
  EXPECT_NE(a.host_count(), b.host_count());
}

}  // namespace
