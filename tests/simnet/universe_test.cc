#include "simnet/universe.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/rng.h"
#include "simnet/universe_builder.h"
#include "testutil/fixtures.h"

namespace v6::simnet {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeReply;
using v6::net::ProbeType;
using v6::testutil::small_universe;

TEST(UniverseBuilder, DeterministicForSameSeed) {
  UniverseConfig config;
  config.seed = 7;
  config.num_ases = 50;
  config.host_scale = 0.05;
  const Universe a = UniverseBuilder::build(config);
  const Universe b = UniverseBuilder::build(config);
  ASSERT_EQ(a.hosts().size(), b.hosts().size());
  for (std::size_t i = 0; i < a.hosts().size(); ++i) {
    EXPECT_EQ(a.hosts()[i].addr, b.hosts()[i].addr);
    EXPECT_EQ(a.hosts()[i].services, b.hosts()[i].services);
  }
  ASSERT_EQ(a.alias_regions().size(), b.alias_regions().size());
}

TEST(UniverseBuilder, DifferentSeedsDiffer) {
  UniverseConfig config;
  config.num_ases = 50;
  config.host_scale = 0.05;
  config.seed = 1;
  const Universe a = UniverseBuilder::build(config);
  config.seed = 2;
  const Universe b = UniverseBuilder::build(config);
  // Host populations should not be identical.
  bool differs = a.hosts().size() != b.hosts().size();
  if (!differs) {
    for (std::size_t i = 0; i < a.hosts().size(); ++i) {
      if (a.hosts()[i].addr != b.hosts()[i].addr) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Universe, EveryAsHasRouterPresence) {
  const Universe& u = small_universe();
  std::unordered_set<std::uint32_t> with_router;
  for (const HostRecord& h : u.hosts()) {
    if (h.kind == HostKind::kRouter) with_router.insert(h.asn);
  }
  // The builder guarantees infrastructure routers per announced prefix.
  std::unordered_set<std::uint32_t> announced;
  for (const auto& [prefix, asn] : u.routes().announcements()) {
    if (!u.dense_region() || asn != u.dense_region()->asn) {
      announced.insert(asn);
    }
  }
  for (const std::uint32_t asn : announced) {
    EXPECT_TRUE(with_router.contains(asn)) << "AS " << asn;
  }
}

TEST(Universe, ActiveHostAnswersItsServices) {
  const Universe& u = small_universe();
  v6::net::Rng rng(1);
  int checked = 0;
  for (const HostRecord& h : u.hosts()) {
    if (u.is_aliased(h.addr)) continue;
    for (const ProbeType t : v6::net::kAllProbeTypes) {
      const ProbeReply reply = u.probe(h.addr, t, rng);
      if (v6::net::has_service(h.services, t)) {
        EXPECT_EQ(reply, v6::net::positive_reply(t))
            << h.addr.to_string() << " " << v6::net::to_string(t);
      } else {
        EXPECT_NE(reply, v6::net::positive_reply(t))
            << h.addr.to_string() << " " << v6::net::to_string(t);
      }
    }
    if (++checked >= 2000) break;
  }
  EXPECT_GT(checked, 0);
}

TEST(Universe, ChurnedHostsAnswerNothing) {
  const Universe& u = small_universe();
  v6::net::Rng rng(2);
  int churned = 0;
  for (const HostRecord& h : u.hosts()) {
    if (!h.churned() || u.is_aliased(h.addr)) continue;
    ++churned;
    for (const ProbeType t : v6::net::kAllProbeTypes) {
      EXPECT_NE(u.probe(h.addr, t, rng), v6::net::positive_reply(t));
    }
    if (churned >= 500) break;
  }
  EXPECT_GT(churned, 0) << "universe should contain churned hosts";
}

TEST(Universe, AliasRegionsAnswerEverywhere) {
  const Universe& u = small_universe();
  v6::net::Rng rng(3);
  int tested = 0;
  for (const AliasRegion& region : u.alias_regions()) {
    if (region.rate_limited) continue;
    for (int i = 0; i < 8; ++i) {
      const Ipv6Addr addr = v6::net::random_in_prefix(rng, region.prefix);
      for (const ProbeType t : v6::net::kAllProbeTypes) {
        if (v6::net::has_service(region.services, t)) {
          EXPECT_EQ(u.probe(addr, t, rng), v6::net::positive_reply(t));
        }
      }
      EXPECT_TRUE(u.is_aliased(addr));
    }
    if (++tested >= 20) break;
  }
  EXPECT_GT(tested, 0) << "universe should contain alias regions";
}

TEST(Universe, RateLimitedAliasDropsSomeProbes) {
  const Universe& u = small_universe();
  const AliasRegion* limited = nullptr;
  for (const AliasRegion& region : u.alias_regions()) {
    if (region.rate_limited &&
        v6::net::has_service(region.services, ProbeType::kIcmp)) {
      limited = &region;
      break;
    }
  }
  ASSERT_NE(limited, nullptr) << "universe should contain rate-limited aliases";
  v6::net::Rng rng(4);
  int answered = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    const Ipv6Addr addr = v6::net::random_in_prefix(rng, limited->prefix);
    if (u.probe(addr, ProbeType::kIcmp, rng) == ProbeReply::kEchoReply) {
      ++answered;
    }
  }
  const double rate = static_cast<double>(answered) / kProbes;
  EXPECT_NEAR(rate, limited->response_prob, 0.05);
}

TEST(Universe, DenseRegionOnlyLow64OneAnswers) {
  const Universe& u = small_universe();
  ASSERT_TRUE(u.dense_region().has_value());
  const DenseRegion& dense = *u.dense_region();
  v6::net::Rng rng(5);
  int active = 0;
  constexpr int kSamples = 3000;
  for (int i = 0; i < kSamples; ++i) {
    const Ipv6Addr r = v6::net::random_in_prefix(rng, dense.prefix);
    // Pattern address (low64 == ::1) answers probabilistically...
    const Ipv6Addr pattern(r.hi(), 1);
    if (u.probe(pattern, ProbeType::kIcmp, rng) == ProbeReply::kEchoReply) {
      ++active;
    }
    // ...but never on other ports, and non-pattern addresses never do.
    EXPECT_NE(u.probe(pattern, ProbeType::kTcp80, rng),
              ProbeReply::kSynAck);
    const Ipv6Addr non_pattern(r.hi(), 2);
    EXPECT_NE(u.probe(non_pattern, ProbeType::kIcmp, rng),
              ProbeReply::kEchoReply);
  }
  const double rate = static_cast<double>(active) / kSamples;
  EXPECT_NEAR(rate, dense.active_prob, 0.05);
}

TEST(Universe, DenseRegionProbingIsStablePerAddress) {
  const Universe& u = small_universe();
  ASSERT_TRUE(u.dense_region().has_value());
  v6::net::Rng rng(6);
  const Ipv6Addr probe_addr(
      v6::net::random_in_prefix(rng, u.dense_region()->prefix).hi(), 1);
  const ProbeReply first = u.probe(probe_addr, ProbeType::kIcmp, rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(u.probe(probe_addr, ProbeType::kIcmp, rng), first);
  }
}

TEST(Universe, RoutedAddressesResolveToAsn) {
  const Universe& u = small_universe();
  int checked = 0;
  for (const HostRecord& h : u.hosts()) {
    const auto asn = u.asn_of(h.addr);
    ASSERT_TRUE(asn.has_value()) << h.addr.to_string();
    EXPECT_EQ(*asn, h.asn) << h.addr.to_string();
    if (++checked >= 3000) break;
  }
}

TEST(Universe, UnroutedSpaceTimesOut) {
  const Universe& u = small_universe();
  v6::net::Rng rng(8);
  // 3000::/4 is never allocated by the builder.
  const Ipv6Addr outside = Ipv6Addr::must_parse("3001:db8::1");
  EXPECT_FALSE(u.asn_of(outside).has_value());
  EXPECT_EQ(u.probe(outside, ProbeType::kIcmp, rng), ProbeReply::kTimeout);
}

TEST(Universe, ClosedTcpPortOnLiveHostSendsRst) {
  const Universe& u = small_universe();
  v6::net::Rng rng(9);
  int found = 0;
  for (const HostRecord& h : u.hosts()) {
    if (u.is_aliased(h.addr) || h.services == 0) continue;
    if (!v6::net::has_service(h.services, ProbeType::kTcp80)) {
      EXPECT_EQ(u.probe(h.addr, ProbeType::kTcp80, rng), ProbeReply::kRst);
      if (++found >= 200) break;
    }
  }
  EXPECT_GT(found, 0);
}

TEST(Universe, ActiveCountsConsistent) {
  const Universe& u = small_universe();
  std::size_t sum_any = 0;
  for (const HostRecord& h : u.hosts()) {
    if (h.services != 0) ++sum_any;
  }
  EXPECT_EQ(u.active_host_count_any(), sum_any);
  EXPECT_LE(u.active_host_count(ProbeType::kUdp53),
            u.active_host_count_any());
  EXPECT_GT(u.active_host_count(ProbeType::kIcmp),
            u.active_host_count(ProbeType::kUdp53));
}

TEST(Universe, HostScaleScalesPopulation) {
  UniverseConfig small_config;
  small_config.seed = 3;
  small_config.num_ases = 60;
  small_config.host_scale = 0.05;
  UniverseConfig big_config = small_config;
  big_config.host_scale = 0.2;
  const Universe small_u = UniverseBuilder::build(small_config);
  const Universe big_u = UniverseBuilder::build(big_config);
  EXPECT_GT(big_u.hosts().size(), small_u.hosts().size() * 2);
}

TEST(Universe, DenseRegionCanBeDisabled) {
  UniverseConfig config;
  config.seed = 4;
  config.num_ases = 30;
  config.host_scale = 0.05;
  config.include_dense_region = false;
  const Universe u = UniverseBuilder::build(config);
  EXPECT_FALSE(u.dense_region().has_value());
}

TEST(Universe, PublishedFractionRoughlyRespected) {
  const Universe& u = small_universe();
  std::size_t published = 0;
  for (const AliasRegion& region : u.alias_regions()) {
    if (region.published) ++published;
  }
  ASSERT_GT(u.alias_regions().size(), 10u);
  const double fraction = static_cast<double>(published) /
                          static_cast<double>(u.alias_regions().size());
  EXPECT_NEAR(fraction, u.config().alias_published_fraction, 0.25);
}

}  // namespace
}  // namespace v6::simnet
