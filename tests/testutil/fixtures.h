// Shared test fixtures: small, fast-to-build universes.
#pragma once

#include "simnet/universe.h"
#include "simnet/universe_builder.h"

namespace v6::testutil {

/// A small universe shared across tests (built once).
inline const v6::simnet::Universe& small_universe() {
  static const v6::simnet::Universe universe = [] {
    v6::simnet::UniverseConfig config;
    config.seed = 1234;
    config.num_ases = 200;
    config.host_scale = 0.15;
    config.dense_region_prefix_len = 52;
    return v6::simnet::UniverseBuilder::build(config);
  }();
  return universe;
}

}  // namespace v6::testutil
