// Seeded property-test generators: random-but-valid fault plans,
// prefixes, and probe schedules.
//
// Everything draws from an explicit net/rng.h engine the caller seeds,
// so a failing property test reproduces from its seed alone. Used by the
// fault-matrix suite (tests/fault/) and for growing the fuzz harnesses'
// corpora (tests/fuzz/fuzz_fault_spec.cc round-trips what these emit).
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault_plan.h"
#include "net/ipv6.h"
#include "net/prefix.h"
#include "net/rng.h"

namespace v6::testutil {

/// A uniformly random prefix with length in [min_len, max_len]. The
/// Prefix constructor normalizes (clears host bits), so the result is
/// always a valid CIDR value.
inline v6::net::Prefix random_prefix(v6::net::Rng& rng, int min_len = 16,
                                     int max_len = 64) {
  const int len = v6::net::uniform_int(rng, min_len, max_len);
  return v6::net::Prefix(v6::net::Ipv6Addr(rng(), rng()), len);
}

/// A random fault plan that always satisfies FaultPlan::valid():
/// probabilities land in [0,1], rates and bursts are positive, outage
/// times non-negative. Roughly half the draws enable each fault family,
/// so disabled and single-family plans appear regularly.
inline v6::fault::FaultPlan random_fault_plan(v6::net::Rng& rng) {
  v6::fault::FaultPlan plan;
  if (v6::net::chance(rng, 0.5)) {
    plan.base_loss = v6::net::uniform01(rng) * 0.9;
  }
  const int n_loss = v6::net::uniform_int(rng, 0, 3);
  for (int i = 0; i < n_loss; ++i) {
    plan.with_loss(random_prefix(rng), v6::net::uniform01(rng));
  }
  const int n_rlimit = v6::net::uniform_int(rng, 0, 2);
  for (int i = 0; i < n_rlimit; ++i) {
    const double rate = 0.5 + v6::net::uniform01(rng) * 100.0;
    const double burst = 1.0 + v6::net::uniform01(rng) * 49.0;
    const int bucket_len =
        v6::net::chance(rng, 0.5) ? -1 : v6::net::uniform_int(rng, 0, 128);
    plan.with_rate_limit(random_prefix(rng), rate, burst, bucket_len);
  }
  const int n_outage = v6::net::uniform_int(rng, 0, 2);
  for (int i = 0; i < n_outage; ++i) {
    const double start = v6::net::uniform01(rng) * 10.0;
    const double duration = v6::net::uniform01(rng) * 5.0;
    const double period =
        v6::net::chance(rng, 0.5) ? 0.0 : duration + v6::net::uniform01(rng) * 20.0;
    plan.with_outage(random_prefix(rng), start, duration, period);
  }
  const int n_error = v6::net::uniform_int(rng, 0, 2);
  for (int i = 0; i < n_error; ++i) {
    plan.with_error(random_prefix(rng), v6::net::uniform01(rng));
  }
  if (v6::net::chance(rng, 0.3)) {
    plan.wire_pps = 100.0 + v6::net::uniform01(rng) * 99'900.0;
  }
  return plan;
}

/// A probe schedule of `count` targets inside `scope`, with ~20%
/// deliberate repeats so dedup paths get exercised.
inline std::vector<v6::net::Ipv6Addr> random_probe_schedule(
    v6::net::Rng& rng, const v6::net::Prefix& scope, std::size_t count) {
  std::vector<v6::net::Ipv6Addr> schedule;
  schedule.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!schedule.empty() && v6::net::chance(rng, 0.2)) {
      const std::size_t j =
          v6::net::uniform_int<std::size_t>(rng, 0, schedule.size() - 1);
      schedule.push_back(schedule[j]);
    } else {
      schedule.push_back(v6::net::random_in_prefix(rng, scope));
    }
  }
  return schedule;
}

}  // namespace v6::testutil
