// Property tests for the region/range cursors: complete, duplicate-free
// enumeration of exactly the declared space, for swept shapes.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/rng.h"
#include "tga/space_tree.h"

namespace v6::tga {
namespace {

using v6::net::Ipv6Addr;

class RegionCursorShapes : public ::testing::TestWithParam<int> {};

TEST_P(RegionCursorShapes, EnumeratesExactlyTheDeclaredSpace) {
  const int free_count = GetParam();
  v6::net::Rng rng(static_cast<std::uint64_t>(free_count) + 17);
  // Random base, random distinct free positions.
  const Ipv6Addr base(rng(), rng());
  std::vector<int> free;
  while (static_cast<int>(free.size()) < free_count) {
    const int pos = static_cast<int>(rng() % 32);
    if (std::find(free.begin(), free.end(), pos) == free.end()) {
      free.push_back(pos);
    }
  }
  RegionCursor cursor(base, free);
  ASSERT_EQ(cursor.capacity(), 1ULL << (4 * free_count));

  std::unordered_set<Ipv6Addr> seen;
  while (auto addr = cursor.next()) {
    // Fixed positions never change.
    for (int pos = 0; pos < Ipv6Addr::kNybbles; ++pos) {
      if (std::find(free.begin(), free.end(), pos) == free.end()) {
        ASSERT_EQ(addr->nybble(pos), base.nybble(pos));
      }
    }
    ASSERT_TRUE(seen.insert(*addr).second) << addr->to_string();
  }
  EXPECT_EQ(seen.size(), cursor.capacity());
  EXPECT_TRUE(cursor.exhausted());
}

INSTANTIATE_TEST_SUITE_P(FreeCounts, RegionCursorShapes,
                         ::testing::Values(1, 2, 3, 4));

class RangeCursorShapes : public ::testing::TestWithParam<int> {};

TEST_P(RangeCursorShapes, EnumeratesOnlyDeclaredValues) {
  const int positions_count = GetParam();
  v6::net::Rng rng(static_cast<std::uint64_t>(positions_count) + 31);
  const Ipv6Addr base(rng(), rng());
  std::vector<int> positions;
  std::vector<std::vector<std::uint8_t>> values;
  std::uint64_t expected_capacity = 1;
  while (static_cast<int>(positions.size()) < positions_count) {
    const int pos = static_cast<int>(rng() % 32);
    if (std::find(positions.begin(), positions.end(), pos) !=
        positions.end()) {
      continue;
    }
    positions.push_back(pos);
    std::vector<std::uint8_t> vals;
    const int n = 1 + static_cast<int>(rng() % 5);
    for (int i = 0; i < n; ++i) {
      const std::uint8_t v = static_cast<std::uint8_t>(rng() & 0xF);
      if (std::find(vals.begin(), vals.end(), v) == vals.end()) {
        vals.push_back(v);
      }
    }
    std::sort(vals.begin(), vals.end());
    expected_capacity *= vals.size();
    values.push_back(std::move(vals));
  }
  // RangeCursor requires positions sorted together with their values.
  std::vector<std::size_t> order(positions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return positions[a] < positions[b];
  });
  std::vector<int> sorted_positions;
  std::vector<std::vector<std::uint8_t>> sorted_values;
  for (const std::size_t i : order) {
    sorted_positions.push_back(positions[i]);
    sorted_values.push_back(values[i]);
  }

  RangeCursor cursor(base, sorted_positions, sorted_values);
  EXPECT_EQ(cursor.capacity(), expected_capacity);
  std::unordered_set<Ipv6Addr> seen;
  while (auto addr = cursor.next()) {
    for (std::size_t i = 0; i < sorted_positions.size(); ++i) {
      const std::uint8_t v = addr->nybble(sorted_positions[i]);
      ASSERT_NE(std::find(sorted_values[i].begin(), sorted_values[i].end(),
                          v),
                sorted_values[i].end())
          << "undeclared value at position " << sorted_positions[i];
    }
    ASSERT_TRUE(seen.insert(*addr).second);
  }
  EXPECT_EQ(seen.size(), expected_capacity);
}

INSTANTIATE_TEST_SUITE_P(PositionCounts, RangeCursorShapes,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RangeCursorProperty, WidenMonotonicallyGrowsCapacity) {
  RangeCursor cursor(Ipv6Addr(0x2001ULL << 48, 0), {30, 31},
                     {{1}, {2}});
  std::uint64_t last = cursor.capacity();
  for (int i = 0; i < 30; ++i) {
    if (!cursor.widen()) break;
    EXPECT_GT(cursor.capacity(), last);
    last = cursor.capacity();
  }
  EXPECT_EQ(last, 256u);  // both positions saturate at 16 values
}

}  // namespace
}  // namespace v6::tga
