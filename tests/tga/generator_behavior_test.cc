// Behavioural tests of generator quality against the simulated Internet:
// pattern exploitation, online adaptation, and 6Sense's integrated
// dealiasing.
#include <gtest/gtest.h>

#include "dealias/online_dealiaser.h"
#include "net/rng.h"
#include "probe/transport.h"
#include "tga/registry.h"
#include "testutil/fixtures.h"

namespace v6::tga {
namespace {

using v6::net::Ipv6Addr;
using v6::net::ProbeType;

/// Runs a generate/observe loop and reports raw ICMP-responsive count.
std::size_t responsive_after(TargetGenerator& generator,
                             std::size_t budget) {
  const auto& universe = v6::testutil::small_universe();
  v6::net::Rng rng(3);
  std::size_t responsive = 0;
  std::size_t generated = 0;
  while (generated < budget) {
    const auto batch = generator.next_batch(
        std::min<std::size_t>(2048, budget - generated));
    if (batch.empty()) break;
    generated += batch.size();
    for (const Ipv6Addr& a : batch) {
      const bool active = universe.probe(a, ProbeType::kIcmp, rng) ==
                          v6::net::ProbeReply::kEchoReply;
      if (active) ++responsive;
      generator.observe(a, active);
    }
  }
  return responsive;
}

std::vector<Ipv6Addr> active_seeds(std::size_t n) {
  // Stride-sample so the seed set spans many ASes (taking the first N
  // hosts would collapse onto a single large network).
  const auto& universe = v6::testutil::small_universe();
  const auto hosts = universe.hosts();
  std::vector<Ipv6Addr> seeds;
  const std::size_t stride = std::max<std::size_t>(1, hosts.size() / n);
  for (std::size_t i = 0; i < hosts.size() && seeds.size() < n;
       i += stride) {
    const auto& host = hosts[i];
    if (host.services != 0 && !universe.is_aliased(host.addr)) {
      seeds.push_back(host.addr);
    }
  }
  return seeds;
}

class GeneratorEffectiveness : public ::testing::TestWithParam<TgaKind> {};

TEST_P(GeneratorEffectiveness, BeatsRandomGuessingByOrders) {
  // Any TGA must vastly outperform uniform random guessing (which on a
  // 2^128 space finds essentially nothing).
  auto generator = make_generator(GetParam());
  generator->prepare(active_seeds(4000), 42);
  const std::size_t responsive = responsive_after(*generator, 20'000);
  EXPECT_GT(responsive, 50u) << generator->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllTgas, GeneratorEffectiveness,
    ::testing::ValuesIn(kAllTgas.begin(), kAllTgas.end()),
    [](const auto& info) {
      std::string name{to_string(info.param)};
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(SixSenseBehavior, IntegratedDealiasingReducesAliasedOutput) {
  const auto& universe = v6::testutil::small_universe();

  // Seeds deliberately polluted with structured aliased addresses.
  std::vector<Ipv6Addr> seeds = active_seeds(2500);
  v6::net::Rng rng(6);
  for (const auto& region : universe.alias_regions()) {
    if (region.rate_limited) continue;
    for (int i = 0; i < 120; ++i) {
      const Ipv6Addr base = region.prefix.addr();
      seeds.push_back(Ipv6Addr(
          base.hi(),
          (base.lo() & ~0xFFFFULL) |
              v6::net::uniform_int<std::uint64_t>(rng, 1, 1024)));
    }
  }

  auto run = [&](bool attach) {
    auto generator = make_generator(TgaKind::kSixSense);
    generator->prepare(seeds, 42);
    v6::probe::SimTransport transport(universe, 9);
    v6::dealias::OnlineDealiaser online(transport, 9);
    if (attach) {
      generator->attach_online_dealiaser(&online, ProbeType::kIcmp);
    }
    v6::net::Rng scan_rng(4);
    std::size_t aliased = 0;
    std::size_t generated = 0;
    while (generated < 30'000) {
      const auto batch = generator->next_batch(2048);
      if (batch.empty()) break;
      generated += batch.size();
      for (const Ipv6Addr& a : batch) {
        if (universe.is_aliased(a)) ++aliased;
        const bool active = universe.probe(a, ProbeType::kIcmp, scan_rng) ==
                            v6::net::ProbeReply::kEchoReply;
        generator->observe(a, active);
      }
    }
    return aliased;
  };

  const std::size_t without = run(false);
  const std::size_t with = run(true);
  EXPECT_GT(without, 0u);
  EXPECT_LT(with, without / 2)
      << "integrated dealiasing should cut aliased output sharply";
}

TEST(OnlineBehavior, DetAdaptsTowardsResponsiveRegions) {
  // With feedback, DET should outperform the same region model scanned
  // without feedback (we approximate "no feedback" by lying that every
  // probe missed).
  const auto seeds = active_seeds(3000);

  auto with_feedback = make_generator(TgaKind::kDet);
  with_feedback->prepare(seeds, 42);
  const std::size_t adaptive = responsive_after(*with_feedback, 30'000);

  auto without_feedback = make_generator(TgaKind::kDet);
  without_feedback->prepare(seeds, 42);
  const auto& universe = v6::testutil::small_universe();
  v6::net::Rng rng(3);
  std::size_t blind = 0;
  std::size_t generated = 0;
  while (generated < 30'000) {
    const auto batch = without_feedback->next_batch(2048);
    if (batch.empty()) break;
    generated += batch.size();
    for (const Ipv6Addr& a : batch) {
      if (universe.probe(a, ProbeType::kIcmp, rng) ==
          v6::net::ProbeReply::kEchoReply) {
        ++blind;
      }
      without_feedback->observe(a, false);  // suppress all feedback
    }
  }
  EXPECT_GT(adaptive, blind);
}

}  // namespace
}  // namespace v6::tga
