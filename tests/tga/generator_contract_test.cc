// Contract tests every TGA must satisfy, parameterized over all eight
// generators (TEST_P): freshness (no repeats, no seeds), determinism,
// budget behaviour, and online feedback safety.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/rng.h"
#include "tga/registry.h"
#include "testutil/fixtures.h"

namespace v6::tga {
namespace {

using v6::net::Ipv6Addr;

std::vector<Ipv6Addr> sample_seeds(std::size_t n) {
  const auto hosts = v6::testutil::small_universe().hosts();
  std::vector<Ipv6Addr> seeds;
  const std::size_t stride = std::max<std::size_t>(1, hosts.size() / n);
  for (std::size_t i = 0; i < hosts.size() && seeds.size() < n; i += stride) {
    seeds.push_back(hosts[i].addr);
  }
  return seeds;
}

class GeneratorContract : public ::testing::TestWithParam<TgaKind> {
 protected:
  std::unique_ptr<TargetGenerator> make() {
    return make_generator(GetParam());
  }
};

TEST_P(GeneratorContract, NameMatchesRegistry) {
  EXPECT_EQ(make()->name(), to_string(GetParam()));
}

TEST_P(GeneratorContract, MakeByNameWorks) {
  const auto by_name = make_generator(to_string(GetParam()));
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name->name(), to_string(GetParam()));
}

TEST_P(GeneratorContract, GeneratesRequestedCount) {
  auto generator = make();
  generator->prepare(sample_seeds(2000), 42);
  const auto batch = generator->next_batch(500);
  EXPECT_EQ(batch.size(), 500u) << generator->name();
}

TEST_P(GeneratorContract, NeverRepeatsAcrossBatches) {
  auto generator = make();
  generator->prepare(sample_seeds(2000), 42);
  std::unordered_set<Ipv6Addr> seen;
  for (int round = 0; round < 10; ++round) {
    for (const Ipv6Addr& a : generator->next_batch(300)) {
      EXPECT_TRUE(seen.insert(a).second)
          << generator->name() << " repeated " << a.to_string();
    }
  }
}

TEST_P(GeneratorContract, NeverEmitsSeeds) {
  const auto seeds = sample_seeds(2000);
  const std::unordered_set<Ipv6Addr> seed_set(seeds.begin(), seeds.end());
  auto generator = make();
  generator->prepare(seeds, 42);
  for (int round = 0; round < 5; ++round) {
    for (const Ipv6Addr& a : generator->next_batch(400)) {
      EXPECT_FALSE(seed_set.contains(a))
          << generator->name() << " emitted seed " << a.to_string();
    }
  }
}

TEST_P(GeneratorContract, DeterministicForSameSeed) {
  const auto seeds = sample_seeds(1500);
  auto a = make();
  auto b = make();
  a->prepare(seeds, 7);
  b->prepare(seeds, 7);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(a->next_batch(256), b->next_batch(256)) << a->name();
  }
}

TEST_P(GeneratorContract, PrepareResetsState) {
  const auto seeds = sample_seeds(1500);
  auto generator = make();
  generator->prepare(seeds, 7);
  const auto first = generator->next_batch(256);
  generator->next_batch(256);
  generator->prepare(seeds, 7);
  EXPECT_EQ(generator->next_batch(256), first) << generator->name();
}

TEST_P(GeneratorContract, EmptySeedsYieldNoTargets) {
  auto generator = make();
  generator->prepare({}, 42);
  EXPECT_TRUE(generator->next_batch(100).empty()) << generator->name();
}

TEST_P(GeneratorContract, SingleSeedStillGenerates) {
  auto generator = make();
  const std::vector<Ipv6Addr> one = {
      Ipv6Addr::must_parse("2001:db8:1:2::1")};
  generator->prepare(one, 42);
  const auto batch = generator->next_batch(10);
  EXPECT_FALSE(batch.empty()) << generator->name();
}

TEST_P(GeneratorContract, ObserveUnknownAddressIsSafe) {
  auto generator = make();
  generator->prepare(sample_seeds(500), 42);
  generator->observe(Ipv6Addr::must_parse("2001:db8::1"), true);
  generator->observe(Ipv6Addr::must_parse("2001:db8::2"), false);
  EXPECT_FALSE(generator->next_batch(64).empty());
}

TEST_P(GeneratorContract, ObserveFeedbackLoopRuns) {
  auto generator = make();
  generator->prepare(sample_seeds(2000), 42);
  const auto& universe = v6::testutil::small_universe();
  v6::net::Rng rng(5);
  std::size_t produced = 0;
  for (int round = 0; round < 8; ++round) {
    const auto batch = generator->next_batch(512);
    produced += batch.size();
    for (const Ipv6Addr& a : batch) {
      const bool active =
          universe.probe(a, v6::net::ProbeType::kIcmp, rng) ==
          v6::net::ProbeReply::kEchoReply;
      generator->observe(a, active);
    }
  }
  EXPECT_GT(produced, 3000u) << generator->name();
}

TEST_P(GeneratorContract, OnlineFlagConsistent) {
  // Table 1 of the paper: DET, 6Scan, 6Hit, and 6Sense adapt online;
  // the offline models (and the 6Forest extension) do not.
  const bool online = make()->is_online();
  switch (GetParam()) {
    case TgaKind::kDet:
    case TgaKind::kSixScan:
    case TgaKind::kSixHit:
    case TgaKind::kSixSense:
      EXPECT_TRUE(online);
      break;
    default:
      EXPECT_FALSE(online);
  }
}

std::vector<TgaKind> core_and_extension_tgas() {
  std::vector<TgaKind> kinds(kAllTgas.begin(), kAllTgas.end());
  kinds.insert(kinds.end(), kExtensionTgas.begin(), kExtensionTgas.end());
  return kinds;
}

INSTANTIATE_TEST_SUITE_P(
    AllTgas, GeneratorContract,
    ::testing::ValuesIn(core_and_extension_tgas()),
    [](const auto& info) {
      std::string name{to_string(info.param)};
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(make_generator("6Bogus"), nullptr);
}

TEST(Registry, AllKindsConstruct) {
  for (const TgaKind kind : kAllTgas) {
    EXPECT_NE(make_generator(kind), nullptr);
  }
}

}  // namespace
}  // namespace v6::tga
