#include "tga/nybble_stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace v6::tga {
namespace {

using v6::net::Ipv6Addr;

TEST(NybbleHistogram, EntropyOfConstantIsZero) {
  NybbleHistogram h;
  h.count[5] = 100;
  EXPECT_DOUBLE_EQ(h.entropy(), 0.0);
  EXPECT_EQ(h.distinct(), 1);
  EXPECT_EQ(h.mode(), 5);
}

TEST(NybbleHistogram, EntropyOfUniformIsFourBits) {
  NybbleHistogram h;
  for (auto& c : h.count) c = 10;
  EXPECT_NEAR(h.entropy(), 4.0, 1e-9);
  EXPECT_EQ(h.distinct(), 16);
}

TEST(NybbleHistogram, EntropyOfFairCoinIsOneBit) {
  NybbleHistogram h;
  h.count[0] = 50;
  h.count[1] = 50;
  EXPECT_NEAR(h.entropy(), 1.0, 1e-9);
}

TEST(NybbleHistogram, EmptyHistogram) {
  const NybbleHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.entropy(), 0.0);
}

TEST(NybbleStats, VaryingPositionsDetected) {
  std::vector<Ipv6Addr> addrs;
  for (std::uint64_t i = 0; i < 16; ++i) {
    addrs.push_back(Ipv6Addr(0x2001000000000000ULL, i));
  }
  const NybbleStats stats(addrs);
  EXPECT_EQ(stats.varying_positions(), std::vector<int>{31});
  EXPECT_EQ(stats.leftmost_varying_position(), 31);
}

TEST(NybbleStats, MinEntropyPositionPrefersSkewedNybble) {
  std::vector<Ipv6Addr> addrs;
  // Nybble 31 uniform over 16 values; nybble 30 takes only two values.
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t low = ((i % 2) << 4) | (i % 16);
    addrs.push_back(Ipv6Addr(0x2001000000000000ULL, low));
  }
  const NybbleStats stats(addrs);
  EXPECT_EQ(stats.min_entropy_position(), 30);
  EXPECT_EQ(stats.leftmost_varying_position(), 30);
}

TEST(NybbleStats, ConstantSetHasNoSplit) {
  const std::vector<Ipv6Addr> addrs(10,
                                    Ipv6Addr::must_parse("2001:db8::1"));
  const NybbleStats stats(addrs);
  EXPECT_TRUE(stats.varying_positions().empty());
  EXPECT_EQ(stats.leftmost_varying_position(), -1);
  EXPECT_EQ(stats.min_entropy_position(), -1);
}

}  // namespace
}  // namespace v6::tga
