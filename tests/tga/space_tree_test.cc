#include "tga/space_tree.h"

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "net/rng.h"

namespace v6::tga {
namespace {

using v6::net::Ipv6Addr;

Ipv6Addr addr_n(std::uint64_t hi_low, std::uint64_t lo) {
  return Ipv6Addr(0x2001000000000000ULL | hi_low, lo);
}

TEST(RegionCursor, EnumeratesOdometer) {
  // Free positions 30 and 31: counter spins the last nybble fastest.
  RegionCursor cursor(addr_n(0, 0), {30, 31});
  EXPECT_EQ(cursor.capacity(), 256u);
  std::vector<Ipv6Addr> seen;
  for (int i = 0; i < 18; ++i) {
    auto a = cursor.next();
    ASSERT_TRUE(a.has_value());
    seen.push_back(*a);
  }
  EXPECT_EQ(seen[0].lo(), 0x00u);
  EXPECT_EQ(seen[1].lo(), 0x01u);
  EXPECT_EQ(seen[15].lo(), 0x0fu);
  EXPECT_EQ(seen[16].lo(), 0x10u);
  EXPECT_EQ(seen[17].lo(), 0x11u);
}

TEST(RegionCursor, BaseFreePositionsZeroed) {
  RegionCursor cursor(addr_n(0, 0xab), {31});
  // Base nybble 31 zeroed: enumeration starts at ...a0.
  auto first = cursor.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->lo(), 0xa0u);
}

TEST(RegionCursor, ExhaustsExactlyCapacity) {
  RegionCursor cursor(addr_n(0, 0), {31});
  std::unordered_set<Ipv6Addr> seen;
  while (auto a = cursor.next()) {
    EXPECT_TRUE(seen.insert(*a).second);  // no duplicates
  }
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_TRUE(cursor.exhausted());
}

TEST(RegionCursor, ExtendAddsRightmostFixedPosition) {
  RegionCursor cursor(addr_n(0, 0), {31});
  while (cursor.next()) {
  }
  ASSERT_TRUE(cursor.extend());
  EXPECT_EQ(cursor.capacity(), 256u);
  EXPECT_EQ(cursor.free_nybbles(), (std::vector<int>{30, 31}));
  // Enumeration restarted over the enlarged space.
  std::size_t count = 0;
  while (cursor.next()) ++count;
  EXPECT_EQ(count, 256u);
}

TEST(RegionCursor, ExtendFailsWhenFullyFree) {
  std::vector<int> all(32);
  std::iota(all.begin(), all.end(), 0);
  RegionCursor cursor(addr_n(0, 0), all);
  EXPECT_FALSE(cursor.extend());
}

TEST(RangeCursor, EnumeratesValueSets) {
  RangeCursor cursor(addr_n(0, 0), {30, 31},
                     {{0x1, 0x2}, {0x0, 0x5, 0xa}});
  EXPECT_EQ(cursor.capacity(), 6u);
  std::vector<std::uint64_t> lows;
  while (auto a = cursor.next()) lows.push_back(a->lo());
  EXPECT_EQ(lows, (std::vector<std::uint64_t>{0x10, 0x15, 0x1a, 0x20, 0x25,
                                              0x2a}));
}

TEST(RangeCursor, WidenAddsAdjacentValueToNarrowestPosition) {
  RangeCursor cursor(addr_n(0, 0), {30, 31}, {{0x1}, {0x2, 0x3}});
  while (cursor.next()) {
  }
  ASSERT_TRUE(cursor.widen());
  // Position 30 (narrowest) gains value 0x2.
  EXPECT_EQ(cursor.capacity(), 4u);
  std::unordered_set<Ipv6Addr> seen;
  while (auto a = cursor.next()) seen.insert(*a);
  EXPECT_TRUE(seen.contains(addr_n(0, 0x22)));
}

TEST(RangeCursor, WidenExhaustsAtFullRange) {
  std::vector<std::uint8_t> all16(16);
  std::iota(all16.begin(), all16.end(), 0);
  RangeCursor cursor(addr_n(0, 0), {31}, {all16});
  EXPECT_FALSE(cursor.widen());
}

TEST(SpaceTree, EmptySeedsYieldNoRegions) {
  const SpaceTree tree({}, {});
  EXPECT_TRUE(tree.regions().empty());
}

TEST(SpaceTree, SeedCountsPartitionAcrossLeaves) {
  v6::net::Rng rng(11);
  std::vector<Ipv6Addr> seeds;
  for (int subnet = 0; subnet < 20; ++subnet) {
    for (int host = 1; host <= 30; ++host) {
      seeds.push_back(addr_n(static_cast<std::uint64_t>(subnet),
                             static_cast<std::uint64_t>(host)));
    }
  }
  for (const SplitPolicy policy :
       {SplitPolicy::kLeftmost, SplitPolicy::kMinEntropy}) {
    const SpaceTree tree(seeds, {.policy = policy});
    std::uint64_t total = 0;
    for (const TreeRegion& r : tree.regions()) total += r.seed_count;
    EXPECT_EQ(total, seeds.size()) << static_cast<int>(policy);
  }
}

TEST(SpaceTree, RegionsSortedByDensity) {
  v6::net::Rng rng(12);
  std::vector<Ipv6Addr> seeds;
  for (int subnet = 0; subnet < 40; ++subnet) {
    for (int host = 1; host <= 1 + subnet % 14; ++host) {
      seeds.push_back(addr_n(static_cast<std::uint64_t>(subnet),
                             static_cast<std::uint64_t>(host)));
    }
  }
  const SpaceTree tree(seeds, {});
  const auto regions = tree.regions();
  for (std::size_t i = 1; i < regions.size(); ++i) {
    EXPECT_GE(regions[i - 1].density, regions[i].density);
  }
}

TEST(SpaceTree, CounterSubnetBecomesTightRegion) {
  // One subnet with hosts ::1..::40 must yield a region whose free
  // dimensions are the last two nybbles only.
  std::vector<Ipv6Addr> seeds;
  for (std::uint64_t host = 1; host <= 0x40; ++host) {
    seeds.push_back(addr_n(7, host));
  }
  const SpaceTree tree(seeds, {});
  bool found_tight = false;
  for (const TreeRegion& r : tree.regions()) {
    if (r.free.size() <= 2 && r.seed_count >= 10) found_tight = true;
  }
  EXPECT_TRUE(found_tight);
}

TEST(SpaceTree, MaxFreeCapRespected) {
  v6::net::Rng rng(13);
  std::vector<Ipv6Addr> seeds;
  for (int i = 0; i < 100; ++i) {
    seeds.push_back(Ipv6Addr(0x2001000000000000ULL, rng()));  // random low64
  }
  const SpaceTree tree(seeds, {.max_leaf_seeds = 200, .max_free = 4});
  for (const TreeRegion& r : tree.regions()) {
    EXPECT_LE(r.free.size(), 4u);
  }
}

TEST(SpaceTree, SingletonDensityDiscounted) {
  // A singleton leaf must rank below a 16-seed counter leaf.
  std::vector<Ipv6Addr> seeds;
  for (std::uint64_t host = 0; host < 16; ++host) {
    seeds.push_back(addr_n(1, host));
  }
  seeds.push_back(addr_n(0x900, 0xdeadbeefULL));
  const SpaceTree tree(seeds, {});
  const auto regions = tree.regions();
  ASSERT_GE(regions.size(), 2u);
  EXPECT_GE(regions.front().seed_count, 16u);
}

}  // namespace
}  // namespace v6::tga
