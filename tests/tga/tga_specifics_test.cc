// Generator-specific behaviour tests: the mechanisms that differentiate
// the TGAs from one another.
#include <gtest/gtest.h>

#include <unordered_set>

#include "tga/det.h"
#include "tga/entropy_ip.h"
#include "tga/six_forest.h"
#include "tga/six_gen.h"
#include "tga/six_sense.h"
#include "tga/six_tree.h"

namespace v6::tga {
namespace {

using v6::net::Ipv6Addr;

Ipv6Addr subnet_host(std::uint64_t subnet, std::uint64_t host) {
  return Ipv6Addr(0x2001000000000000ULL | (subnet << 16), host);
}

/// Seeds with a strong low-64 word pattern spread over many subnets.
std::vector<Ipv6Addr> word_pattern_seeds() {
  std::vector<Ipv6Addr> seeds;
  for (std::uint64_t subnet = 0; subnet < 60; ++subnet) {
    seeds.push_back(subnet_host(subnet, 0x53));
    seeds.push_back(subnet_host(subnet, 0x80));
  }
  // A few subnets where only one of the two words was observed.
  for (std::uint64_t subnet = 60; subnet < 80; ++subnet) {
    seeds.push_back(subnet_host(subnet, 0x53));
  }
  return seeds;
}

TEST(SixSenseSpecific, PatternPoolTransfersAcrossSubnets) {
  // 6Sense's shared lower-64 model must propose ::80 in the subnets that
  // only showed ::53 — cross-subnet pattern transfer.
  SixSense generator;
  generator.prepare(word_pattern_seeds(), 42);
  std::unordered_set<Ipv6Addr> produced;
  for (int round = 0; round < 20; ++round) {
    for (const Ipv6Addr& a : generator.next_batch(512)) produced.insert(a);
  }
  int transferred = 0;
  for (std::uint64_t subnet = 60; subnet < 80; ++subnet) {
    if (produced.contains(subnet_host(subnet, 0x80))) ++transferred;
  }
  EXPECT_GT(transferred, 10);
}

TEST(SixTreeSpecific, DenseSubnetExpandedEarlyAndCompletely) {
  // One dense counter subnet and many far-away singleton subnets: the
  // dense subnet's gaps (hosts 49..255) must be proposed early, and the
  // very first batch must already touch it.
  std::vector<Ipv6Addr> seeds;
  for (std::uint64_t host = 1; host <= 48; ++host) {
    seeds.push_back(subnet_host(1, host));
  }
  for (std::uint64_t subnet = 100; subnet < 140; ++subnet) {
    seeds.push_back(subnet_host(subnet, 0xabcdef0123456789ULL + subnet));
  }
  SixTree generator;
  generator.prepare(seeds, 42);
  std::unordered_set<Ipv6Addr> produced;
  const auto first = generator.next_batch(64);
  std::size_t first_in_dense = 0;
  for (const Ipv6Addr& a : first) {
    produced.insert(a);
    if (a.hi() == subnet_host(1, 0).hi()) ++first_in_dense;
  }
  EXPECT_GT(first_in_dense, 0u);
  for (int round = 0; round < 16; ++round) {
    for (const Ipv6Addr& a : generator.next_batch(256)) produced.insert(a);
  }
  // The whole low byte of the dense subnet has been proposed.
  for (std::uint64_t host = 49; host <= 0xFF; ++host) {
    EXPECT_TRUE(produced.contains(subnet_host(1, host))) << host;
  }
}

TEST(SixGenSpecific, RangeHoleFilledFirst) {
  // A tight 3x3 range with one hole (0x33) plus a much sparser cluster:
  // 6Gen's density-ordered range enumeration must propose the hole
  // before anything from the sparse cluster.
  std::vector<Ipv6Addr> seeds;
  for (const std::uint64_t low :
       {0x11ULL, 0x12ULL, 0x13ULL, 0x21ULL, 0x22ULL, 0x23ULL, 0x31ULL,
        0x32ULL}) {
    seeds.push_back(subnet_host(2, low));
  }
  seeds.push_back(subnet_host(3, 0x1));
  seeds.push_back(subnet_host(3, 0xf00000));
  SixGen generator;
  generator.prepare(seeds, 42);
  const auto batch = generator.next_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], subnet_host(2, 0x33));
}

TEST(DetSpecific, ObservationsShiftBudget) {
  // Two identical-looking regions; only one produces hits. After
  // feedback, generation must concentrate there.
  std::vector<Ipv6Addr> seeds;
  for (std::uint64_t host = 1; host <= 16; ++host) {
    seeds.push_back(subnet_host(4, host));
    seeds.push_back(subnet_host(5, host));
  }
  Det generator;
  generator.prepare(seeds, 42);
  const std::uint64_t live = subnet_host(4, 0).hi();
  std::size_t live_late = 0;
  std::size_t dead_late = 0;
  for (int round = 0; round < 12; ++round) {
    const auto batch = generator.next_batch(128);
    for (const Ipv6Addr& a : batch) {
      generator.observe(a, a.hi() == live);
      if (round >= 6) {
        if (a.hi() == live) ++live_late;
        if (a.hi() == subnet_host(5, 0).hi()) ++dead_late;
      }
    }
  }
  EXPECT_GT(live_late, dead_late * 2);
}

TEST(EntropyIpSpecific, SegmentsFollowEntropyBoundaries) {
  // Constant prefix + uniformly random final nybble: EIP generates
  // addresses whose constant part is preserved.
  std::vector<Ipv6Addr> seeds;
  v6::net::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    seeds.push_back(subnet_host(7, rng() & 0xFF));
  }
  EntropyIp generator;
  generator.prepare(seeds, 42);
  const auto batch = generator.next_batch(100);
  ASSERT_FALSE(batch.empty());
  for (const Ipv6Addr& a : batch) {
    EXPECT_EQ(a.hi(), subnet_host(7, 0).hi()) << a.to_string();
    EXPECT_LE(a.lo(), 0xFFu) << a.to_string();
  }
}

TEST(SixForestSpecific, OutlierLeavesReceiveNoEarlyBudget) {
  // A dense counter subnet plus one extreme outlier seed: the outlier's
  // neighborhood must not appear in the first batches.
  std::vector<Ipv6Addr> seeds;
  for (std::uint64_t host = 1; host <= 64; ++host) {
    seeds.push_back(subnet_host(8, host));
  }
  const Ipv6Addr outlier(0x20FF000000000000ULL, 0xdeadbeefcafef00dULL);
  seeds.push_back(outlier);
  SixForest generator;
  generator.prepare(seeds, 42);
  const auto batch = generator.next_batch(256);
  for (const Ipv6Addr& a : batch) {
    EXPECT_NE(a.hi(), outlier.hi()) << a.to_string();
  }
}

TEST(SixForestSpecific, EnsembleCoversMoreThanSinglePartition) {
  // The forest's union of regions must include patterns from every
  // bootstrap partition (no partition is silently dropped).
  std::vector<Ipv6Addr> seeds;
  for (std::uint64_t subnet = 0; subnet < 16; ++subnet) {
    for (std::uint64_t host = 1; host <= 16; ++host) {
      seeds.push_back(subnet_host(subnet, host));
    }
  }
  SixForest generator;
  generator.prepare(seeds, 42);
  std::unordered_set<std::uint64_t> subnets_touched;
  for (int round = 0; round < 8; ++round) {
    for (const Ipv6Addr& a : generator.next_batch(512)) {
      subnets_touched.insert(a.hi());
    }
  }
  EXPECT_GE(subnets_touched.size(), 16u);
}

}  // namespace
}  // namespace v6::tga
