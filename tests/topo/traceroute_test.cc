#include "topo/traceroute.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/rng.h"
#include "testutil/fixtures.h"

namespace v6::topo {
namespace {

using v6::net::Ipv6Addr;
using v6::testutil::small_universe;

Ipv6Addr some_host_target() {
  return small_universe().hosts()[100].addr;
}

TEST(TracerouteEngine, TraceReachesDestinationAs) {
  TracerouteEngine engine(small_universe(), 42);
  const Ipv6Addr target = some_host_target();
  const auto dest_asn = small_universe().asn_of(target);
  ASSERT_TRUE(dest_asn.has_value());
  const auto path = engine.trace(target, {});
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back().asn, *dest_asn);
  // TTLs strictly increase.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GT(path[i].ttl, path[i - 1].ttl);
  }
}

TEST(TracerouteEngine, HopsAreRouterInterfaces) {
  TracerouteEngine engine(small_universe(), 42);
  const auto path = engine.trace(some_host_target(), {});
  for (const TraceHop& hop : path) {
    const auto* host = small_universe().host(hop.addr);
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(host->kind, v6::simnet::HostKind::kRouter);
    EXPECT_EQ(host->asn, hop.asn);
  }
}

TEST(TracerouteEngine, UnroutedTargetYieldsNoPath) {
  TracerouteEngine engine(small_universe(), 42);
  EXPECT_TRUE(engine.trace(Ipv6Addr::must_parse("3001::1"), {}).empty());
}

TEST(TracerouteEngine, DeterministicPerTarget) {
  TracerouteEngine a(small_universe(), 42);
  TracerouteEngine b(small_universe(), 42);
  const Ipv6Addr target = some_host_target();
  const auto pa = a.trace(target, {});
  const auto pb = b.trace(target, {});
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].addr, pb[i].addr);
    EXPECT_EQ(pa[i].responded, pb[i].responded);
  }
}

TEST(TracerouteEngine, UpstreamsAreStableAndNotSelf) {
  TracerouteEngine engine(small_universe(), 42);
  for (const auto& info : small_universe().asdb().all()) {
    const auto& ups = engine.upstreams(info.asn);
    for (const std::uint32_t provider : ups) {
      EXPECT_NE(provider, info.asn);
    }
  }
}

TEST(TracerouteEngine, CampaignCoversManyAses) {
  TracerouteEngine engine(small_universe(), 42);
  const auto interfaces = engine.campaign(8000, {}, 1);
  EXPECT_GT(interfaces.size(), 100u);
  std::unordered_set<std::uint32_t> ases;
  std::unordered_set<Ipv6Addr> unique(interfaces.begin(), interfaces.end());
  EXPECT_EQ(unique.size(), interfaces.size()) << "campaign must dedupe";
  for (const Ipv6Addr& addr : interfaces) {
    const auto asn = small_universe().asn_of(addr);
    ASSERT_TRUE(asn.has_value());
    ases.insert(*asn);
  }
  // Traceroute campaigns should reach the majority of ASes.
  EXPECT_GT(ases.size(), small_universe().asdb().size() / 2);
}

TEST(TracerouteEngine, VantageBandsSeeDifferentInterfaces) {
  TracerouteEngine engine(small_universe(), 42);
  VantageProfile low{.band_lo = 0.0, .band_hi = 0.5};
  VantageProfile high{.band_lo = 0.5, .band_hi = 1.0};
  const auto a = engine.campaign(4000, low, 2);
  const auto b = engine.campaign(4000, high, 3);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  const std::unordered_set<Ipv6Addr> sa(a.begin(), a.end());
  std::size_t overlap = 0;
  for (const Ipv6Addr& addr : b) {
    if (sa.contains(addr)) ++overlap;
  }
  EXPECT_EQ(overlap, 0u) << "disjoint bands must see disjoint interfaces";
}

TEST(TracerouteEngine, HopResponseProbabilityFiltersHops) {
  TracerouteEngine engine(small_universe(), 42);
  VantageProfile silent{.hop_response_prob = 0.0};
  const auto interfaces = engine.campaign(500, silent, 4);
  EXPECT_TRUE(interfaces.empty());
}

}  // namespace
}  // namespace v6::topo
