#!/usr/bin/env bash
# tools/check.sh — the project's correctness gauntlet.
#
# Full mode (default) runs the whole matrix, one preset at a time:
#
#   default     RelWithDebInfo       full ctest suite
#   asan-ubsan  ASan+UBSan+contracts full ctest suite
#   tsan        TSan+contracts       full ctest suite
#
# Quick mode (`tools/check.sh --quick`) is the inner-loop subset: the
# Release build plus the cheap static gates (`ctest -L lint`, which
# includes v6lint and the header self-containedness target — quick mode
# also re-runs v6lint with --format=json to leave a machine-readable
# build/LINT_REPORT.json behind, gated at 2s of wall time), the fuzz
# smoke runs (`ctest -L fuzz`), and the trace/report round-trip
# (`ctest -L report`: the reader/analyzer unit suite, the introspection
# plane — exposition/flight-recorder/watchdog units plus the expo_smoke
# serve -> scrape -> expo-check round trip — and a tiny traced sweep
# piped through `sos report --json`), the scan-engine bench smoke
# (`ctest -L bench`: bench_throughput's cross-shard bit-identity and
# batch/stream agreement contracts on a tiny target list,
# bench_serve's snapshot-consistency checks under concurrent refresh,
# plus bench_scale's flat-RSS and procedural/materialized equivalence
# gates at 1M-vs-12M hosts — docs/SCALE.md),
# and the continuous-service suite (`ctest -L service`: the hitlist
# store, incremental TGA, scheduler/bandit, and epoch bit-identity
# tests from docs/SERVICE.md).
#
# Faults mode (`tools/check.sh --faults`) runs only the fault-injection
# suite (`ctest -L fault`) under every preset — the focused loop when
# iterating on src/fault or the robust-scanner path.
#
# Analyzer mode (`tools/check.sh --analyzer`) builds the library
# targets under the `gcc-analyzer` preset: GCC -fanalyzer with its
# path-sensitive memory checks (double-free, use-after-free,
# malloc-leak, free-of-non-heap) promoted to errors. It gets its own
# build tree (build-analyzer) and mode because the analyzer costs
# seconds per TU; the sweep covers src/ only (target v6_libs). The
# preset degrades to a plain build with a CMake warning when the
# compiler is not GCC or lacks -fanalyzer.
#
# Extra flags:
#   --jobs N    parallel build/test jobs (default: nproc)
#   --tidy      add -DV6_CLANG_TIDY=ON to every configure (warns and
#               skips when no clang-tidy binary is installed)
#
# Exits nonzero on the first failing step; every step is echoed first so
# CI logs show exactly where the matrix stopped.
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
faults=0
analyzer=0
tidy_flag=()
jobs="$(nproc 2>/dev/null || echo 2)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1 ;;
    --faults) faults=1 ;;
    --analyzer) analyzer=1 ;;
    --tidy) tidy_flag=(-DV6_CLANG_TIDY=ON) ;;
    --jobs) jobs="$2"; shift ;;
    --jobs=*) jobs="${1#--jobs=}" ;;
    -h|--help)
      sed -n '2,43p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) echo "error: unknown flag '$1' (try --help)" >&2; exit 2 ;;
  esac
  shift
done

run() {
  echo "+ $*" >&2
  "$@"
}

configure_and_build() {
  local preset="$1" bindir="$2"
  run cmake --preset "$preset" "${tidy_flag[@]}"
  run cmake --build "$bindir" -j "$jobs"
}

if [[ $analyzer -eq 1 ]]; then
  run cmake --preset gcc-analyzer "${tidy_flag[@]}"
  run cmake --build build-analyzer -j "$jobs" --target v6_libs
  echo "check.sh --analyzer: library targets OK under gcc-analyzer"
  exit 0
fi

if [[ $quick -eq 1 ]]; then
  configure_and_build default build
  run ctest --test-dir build -L lint --output-on-failure -j "$jobs"
  # Machine-readable lint artifact + the wall-time gate: the whole
  # multi-pass sweep of the tree must stay under ~2s in a Release build
  # so it remains an every-commit habit rather than a CI-only one.
  run ./build/tools/lint/v6lint --format=json --stats --jobs "$jobs" \
    --max-wall-ms 2000 src bench examples tests tools \
    > build/LINT_REPORT.json
  echo "wrote build/LINT_REPORT.json" >&2
  run ctest --test-dir build -L fuzz --output-on-failure -j "$jobs"
  run ctest --test-dir build -L report --output-on-failure -j "$jobs"
  run ctest --test-dir build -L bench --output-on-failure -j "$jobs"
  run ctest --test-dir build -L service --output-on-failure -j "$jobs"
  echo "check.sh --quick: OK (Release build + lint + LINT_REPORT.json + fuzz + report + bench + service smoke)"
  exit 0
fi

if [[ $faults -eq 1 ]]; then
  configure_and_build default build
  run ctest --test-dir build -L fault --output-on-failure -j "$jobs"
  configure_and_build asan-ubsan build-asan
  run ctest --test-dir build-asan -L fault --output-on-failure -j "$jobs"
  configure_and_build tsan build-tsan
  run ctest --test-dir build-tsan -L fault --output-on-failure -j "$jobs"
  echo "check.sh --faults: fault suite OK under default, asan-ubsan, tsan"
  exit 0
fi

configure_and_build default build
run ctest --test-dir build --output-on-failure -j "$jobs"

configure_and_build asan-ubsan build-asan
run ctest --test-dir build-asan --output-on-failure -j "$jobs"

configure_and_build tsan build-tsan
run ctest --test-dir build-tsan --output-on-failure -j "$jobs"

echo "check.sh: full matrix OK (default, asan-ubsan, tsan)"
