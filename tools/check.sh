#!/usr/bin/env bash
# tools/check.sh — the project's correctness gauntlet.
#
# Full mode (default) runs the whole matrix, one preset at a time:
#
#   default     RelWithDebInfo       full ctest suite
#   asan-ubsan  ASan+UBSan+contracts full ctest suite
#   tsan        TSan+contracts       full ctest suite
#
# Quick mode (`tools/check.sh --quick`) is the inner-loop subset: the
# Release build plus the cheap static gates (`ctest -L lint`, which
# includes v6lint and the header self-containedness target), the fuzz
# smoke runs (`ctest -L fuzz`), and the trace/report round-trip
# (`ctest -L report`: the reader/analyzer unit suite plus a tiny traced
# sweep piped through `sos report --json`), the scan-engine bench smoke
# (`ctest -L bench`: bench_throughput's cross-shard bit-identity and
# batch/stream agreement contracts on a tiny target list, plus
# bench_serve's snapshot-consistency checks under concurrent refresh),
# and the continuous-service suite (`ctest -L service`: the hitlist
# store, incremental TGA, scheduler/bandit, and epoch bit-identity
# tests from docs/SERVICE.md).
#
# Faults mode (`tools/check.sh --faults`) runs only the fault-injection
# suite (`ctest -L fault`) under every preset — the focused loop when
# iterating on src/fault or the robust-scanner path.
#
# Extra flags:
#   --jobs N    parallel build/test jobs (default: nproc)
#   --tidy      add -DV6_CLANG_TIDY=ON to every configure (warns and
#               skips when no clang-tidy binary is installed)
#
# Exits nonzero on the first failing step; every step is echoed first so
# CI logs show exactly where the matrix stopped.
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
faults=0
tidy_flag=()
jobs="$(nproc 2>/dev/null || echo 2)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1 ;;
    --faults) faults=1 ;;
    --tidy) tidy_flag=(-DV6_CLANG_TIDY=ON) ;;
    --jobs) jobs="$2"; shift ;;
    --jobs=*) jobs="${1#--jobs=}" ;;
    -h|--help)
      sed -n '2,31p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) echo "error: unknown flag '$1' (try --help)" >&2; exit 2 ;;
  esac
  shift
done

run() {
  echo "+ $*" >&2
  "$@"
}

configure_and_build() {
  local preset="$1" bindir="$2"
  run cmake --preset "$preset" "${tidy_flag[@]}"
  run cmake --build "$bindir" -j "$jobs"
}

if [[ $quick -eq 1 ]]; then
  configure_and_build default build
  run ctest --test-dir build -L lint --output-on-failure -j "$jobs"
  run ctest --test-dir build -L fuzz --output-on-failure -j "$jobs"
  run ctest --test-dir build -L report --output-on-failure -j "$jobs"
  run ctest --test-dir build -L bench --output-on-failure -j "$jobs"
  run ctest --test-dir build -L service --output-on-failure -j "$jobs"
  echo "check.sh --quick: OK (Release build + lint + fuzz + report + bench + service smoke)"
  exit 0
fi

if [[ $faults -eq 1 ]]; then
  configure_and_build default build
  run ctest --test-dir build -L fault --output-on-failure -j "$jobs"
  configure_and_build asan-ubsan build-asan
  run ctest --test-dir build-asan -L fault --output-on-failure -j "$jobs"
  configure_and_build tsan build-tsan
  run ctest --test-dir build-tsan -L fault --output-on-failure -j "$jobs"
  echo "check.sh --faults: fault suite OK under default, asan-ubsan, tsan"
  exit 0
fi

configure_and_build default build
run ctest --test-dir build --output-on-failure -j "$jobs"

configure_and_build asan-ubsan build-asan
run ctest --test-dir build-asan --output-on-failure -j "$jobs"

configure_and_build tsan build-tsan
run ctest --test-dir build-tsan --output-on-failure -j "$jobs"

echo "check.sh: full matrix OK (default, asan-ubsan, tsan)"
