# End-to-end smoke for the introspection plane (the `expo_smoke` ctest,
# label `report`; also run by tools/check.sh --quick):
#
#   1. run a short `sos serve` with --status-file (the no-socket scrape
#      path — the same exposition document /metrics serves),
#   2. assert the document carries the service and backpressure families,
#   3. feed it back through `sos expo-check` (the strict parser).
#
# The deep validation (byte-stable golden, grammar rejections, jobs
# invariance) lives in expo_test/golden_expo_test; this script proves
# the *shipped binary* wires serve -> scrape -> parse together.
#
# Usage: cmake -DSOS_BIN=<path> -DWORK_DIR=<dir> -P expo_smoke.cmake
if(NOT DEFINED SOS_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "usage: cmake -DSOS_BIN=<path> -DWORK_DIR=<dir> "
          "-P expo_smoke.cmake")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(status ${WORK_DIR}/expo_smoke_status.prom)
file(REMOVE ${status})

execute_process(
  COMMAND ${SOS_BIN} serve --cycles 2 --budget 4000 --ases 150
          --status-file ${status}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sos serve exited with '${rc}'\n"
                      "stdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT EXISTS ${status})
  message(FATAL_ERROR "sos serve did not write ${status}")
endif()

# The document must carry the plane's key families: service cycle
# telemetry, the stream scanner's backpressure gauges (`.wall`,
# sanitized to _wall), and well-formed HELP/TYPE headers.
file(READ ${status} doc)
foreach(needle
        "# HELP sos_"
        "# TYPE sos_"
        "sos_service_"
        "_wall")
  string(FIND "${doc}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
            "status file is missing '${needle}':\n${doc}")
  endif()
endforeach()

execute_process(
  COMMAND ${SOS_BIN} expo-check ${status}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sos expo-check rejected the status file:\n"
                      "stdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "families")
  message(FATAL_ERROR "expo-check output unexpected:\n${out}")
endif()

message(STATUS "exposition round-trip ok (${status})")
