// v6lint fixture for the *positive* suppression path: this directory
// is deliberately scanned by lint_tree (it does not match the
// testdata* skip), and stays clean only because the inline allow below
// suppresses the seeded deprecated-api hit. The lint_suppression_ok
// ctest scans it alone and expects exit 0 — proving suppressions
// actually suppress, and (with lint_tree) that a used allow is not
// flagged as stale. Never compiled.

namespace v6::fixture {

void legacy_caller_kept_for_this_test() {
  run_all_tgas(universe, seeds);  // v6lint: allow(deprecated-api)
}

}  // namespace v6::fixture
