#include "include_graph.h"

#include <sstream>

namespace v6lint {

std::optional<LayerSpec> LayerSpec::parse(const std::string& text,
                                          std::string& error) {
  LayerSpec spec;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      error = "layers.txt:" + std::to_string(lineno) +
              ": expected 'module: dep dep ...'";
      return std::nullopt;
    }
    std::string module = line.substr(first, colon - first);
    const auto mod_end = module.find_last_not_of(" \t");
    module.resize(mod_end == std::string::npos ? 0 : mod_end + 1);
    if (module.empty() || module.find(' ') != std::string::npos) {
      error = "layers.txt:" + std::to_string(lineno) + ": bad module name";
      return std::nullopt;
    }
    if (spec.allowed.count(module)) {
      error = "layers.txt:" + std::to_string(lineno) + ": module '" + module +
              "' declared twice";
      return std::nullopt;
    }
    auto& deps = spec.allowed[module];
    std::istringstream ds(line.substr(colon + 1));
    std::string dep;
    while (ds >> dep) deps.insert(dep);
  }

  for (const auto& [module, deps] : spec.allowed) {
    for (const std::string& dep : deps) {
      if (dep == module) {
        error = "layers.txt: module '" + module + "' depends on itself";
        return std::nullopt;
      }
      if (!spec.allowed.count(dep)) {
        error = "layers.txt: module '" + module + "' depends on '" + dep +
                "', which is not declared";
        return std::nullopt;
      }
    }
  }

  ModuleGraph declared;
  for (const auto& [module, deps] : spec.allowed) {
    declared.edges[module];  // ensure isolated modules participate
    for (const std::string& dep : deps) declared.add_edge(module, dep);
  }
  const std::vector<std::string> cycle = declared.find_cycle();
  if (!cycle.empty()) {
    error = "layers.txt: declared layering has a cycle:";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      error += (i ? " -> " : " ") + cycle[i];
    }
    return std::nullopt;
  }
  return spec;
}

std::vector<std::string> ModuleGraph::find_cycle() const {
  // Iterative three-color DFS; on hitting a gray node, unwind the
  // explicit stack into the cycle path.
  enum Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [node, deps] : edges) {
    color[node] = kWhite;
    for (const std::string& d : deps) color.emplace(d, kWhite);
  }

  for (const auto& [start, start_deps] : edges) {
    if (color[start] != kWhite) continue;
    struct Frame {
      std::string node;
      std::vector<std::string> deps;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    const auto push = [&](const std::string& node) {
      Frame f;
      f.node = node;
      const auto it = edges.find(node);
      if (it != edges.end()) {
        f.deps.assign(it->second.begin(), it->second.end());
      }
      color[node] = kGray;
      stack.push_back(std::move(f));
    };
    push(start);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.deps.size()) {
        color[top.node] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::string dep = top.deps[top.next++];
      if (color[dep] == kGray) {
        std::vector<std::string> cycle{dep};
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          cycle.push_back(it->node);
          if (it->node == dep) break;
        }
        // Unwound back-to-front: flip so the path reads along edges.
        std::vector<std::string> path(cycle.rbegin(), cycle.rend());
        return path;
      }
      if (color[dep] == kWhite) push(dep);
    }
  }
  return {};
}

std::set<std::string> ModuleGraph::transitive_deps(
    const std::string& from) const {
  std::set<std::string> seen;
  std::vector<std::string> work;
  const auto expand = [&](const std::string& node) {
    const auto it = edges.find(node);
    if (it == edges.end()) return;
    for (const std::string& dep : it->second) {
      if (dep != from && seen.insert(dep).second) work.push_back(dep);
    }
  };
  expand(from);
  while (!work.empty()) {
    const std::string node = std::move(work.back());
    work.pop_back();
    expand(node);
  }
  return seen;
}

std::string module_of_path(const std::string& generic_path) {
  // Component after the *last* "src" component, so fixture trees like
  // tools/lint/testdata/src/probe/... project onto modules the same
  // way the real tree does.
  std::size_t module_begin = std::string::npos;
  std::size_t pos = 0;
  while (pos < generic_path.size()) {
    std::size_t end = generic_path.find('/', pos);
    if (end == std::string::npos) end = generic_path.size();
    if (generic_path.compare(pos, end - pos, "src") == 0 &&
        end < generic_path.size()) {
      module_begin = end + 1;
    }
    pos = end + 1;
  }
  if (module_begin == std::string::npos) return "";
  const std::size_t slash = generic_path.find('/', module_begin);
  if (slash == std::string::npos) return "";  // file directly under src/
  return generic_path.substr(module_begin, slash - module_begin);
}

std::string src_relative_of_path(const std::string& generic_path) {
  std::size_t rel_begin = std::string::npos;
  std::size_t pos = 0;
  while (pos < generic_path.size()) {
    std::size_t end = generic_path.find('/', pos);
    if (end == std::string::npos) end = generic_path.size();
    if (generic_path.compare(pos, end - pos, "src") == 0 &&
        end < generic_path.size()) {
      rel_begin = end + 1;
    }
    pos = end + 1;
  }
  return rel_begin == std::string::npos ? "" : generic_path.substr(rel_begin);
}

std::string module_of_include(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos || slash == 0) return "";
  return target.substr(0, slash);
}

}  // namespace v6lint
