#pragma once
// v6lint include-graph pass: extracts the project-internal `#include`
// DAG from the lexed files, projects it onto src/ modules, and checks
// it against the declared layering in tools/lint/layers.txt.
//
// A "module" is the first path component after the last `src/`
// component of a file's path (src/probe/scanner.cc -> "probe"); the
// same projection applies to include targets written repo-style
// ("fault/fault_plan.h" -> "fault"), which is how every internal
// include in this tree is spelled.

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace v6lint {

/// Declared module layering: for each module, the set of modules it may
/// directly include. Parsed from layers.txt (`module: dep dep ...`,
/// `#` comments). Every dep must itself be declared, and the declared
/// graph must be acyclic — both are validated at load time.
struct LayerSpec {
  std::map<std::string, std::set<std::string>> allowed;

  bool declared(const std::string& module) const {
    return allowed.count(module) != 0;
  }
  bool edge_allowed(const std::string& from, const std::string& to) const {
    const auto it = allowed.find(from);
    return it != allowed.end() && it->second.count(to) != 0;
  }

  /// Parses the spec text. Returns nullopt and fills `error` on
  /// malformed lines, undeclared deps, or a cycle in the declared DAG.
  static std::optional<LayerSpec> parse(const std::string& text,
                                        std::string& error);
};

/// Module-level dependency graph (observed or declared).
struct ModuleGraph {
  std::map<std::string, std::set<std::string>> edges;

  void add_edge(const std::string& from, const std::string& to) {
    if (from != to) edges[from].insert(to);
  }

  /// Returns a cycle as a module path (front() == back()) if the graph
  /// has one, else an empty vector.
  std::vector<std::string> find_cycle() const;

  /// Every module reachable from `from` along dependency edges,
  /// excluding `from` itself — the transitive dependency set.
  std::set<std::string> transitive_deps(const std::string& from) const;
};

/// Module of a repo path ("" when the file is not under a src/ module).
std::string module_of_path(const std::string& generic_path);

/// Path relative to the last `src/` component ("src/probe/scanner.h"
/// -> "probe/scanner.h"; "" when the path has no src/ component) — the
/// spelling include directives use, keying ProjectIndex lookups.
std::string src_relative_of_path(const std::string& generic_path);

/// Module of an include target as written ("fault/fault_plan.h" ->
/// "fault"; "vector" or "foo.h" -> "").
std::string module_of_include(const std::string& target);

}  // namespace v6lint
