// Unit tests for the v6lint include-graph pass: layer-spec parsing and
// validation, cycle detection, transitive-dependency reporting, and the
// path -> module projection the layering rule relies on.
#include "include_graph.h"

#include <gtest/gtest.h>

namespace v6lint {
namespace {

TEST(LayerSpec, ParsesModulesAndDeps) {
  std::string err;
  const auto spec = LayerSpec::parse(
      "# comment\n"
      "base:\n"
      "mid: base\n"
      "top: mid base  # trailing comment\n",
      err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_TRUE(spec->declared("base"));
  EXPECT_TRUE(spec->edge_allowed("top", "mid"));
  EXPECT_TRUE(spec->edge_allowed("top", "base"));
  EXPECT_FALSE(spec->edge_allowed("base", "top"));
  EXPECT_FALSE(spec->edge_allowed("mid", "top"));
  EXPECT_FALSE(spec->declared("absent"));
}

TEST(LayerSpec, RejectsUndeclaredDep) {
  std::string err;
  EXPECT_FALSE(LayerSpec::parse("a: ghost\n", err).has_value());
  EXPECT_NE(err.find("ghost"), std::string::npos);
}

TEST(LayerSpec, RejectsSelfDep) {
  std::string err;
  EXPECT_FALSE(LayerSpec::parse("a: a\n", err).has_value());
}

TEST(LayerSpec, RejectsDuplicateModule) {
  std::string err;
  EXPECT_FALSE(LayerSpec::parse("a:\na:\n", err).has_value());
}

TEST(LayerSpec, RejectsDeclaredCycle) {
  std::string err;
  EXPECT_FALSE(LayerSpec::parse("a: b\nb: c\nc: a\n", err).has_value());
  EXPECT_NE(err.find("cycle"), std::string::npos);
}

TEST(ModuleGraph, AcyclicGraphHasNoCycle) {
  ModuleGraph g;
  g.add_edge("top", "mid");
  g.add_edge("top", "base");
  g.add_edge("mid", "base");
  EXPECT_TRUE(g.find_cycle().empty());
}

TEST(ModuleGraph, FindsCyclePath) {
  ModuleGraph g;
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  g.add_edge("c", "a");
  g.add_edge("c", "d");  // branch off the cycle
  const std::vector<std::string> cycle = g.find_cycle();
  ASSERT_GE(cycle.size(), 4u);
  EXPECT_EQ(cycle.front(), cycle.back());
  // Every consecutive pair must be a real edge.
  for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
    const auto it = g.edges.find(cycle[i]);
    ASSERT_NE(it, g.edges.end());
    EXPECT_TRUE(it->second.count(cycle[i + 1]))
        << cycle[i] << " -> " << cycle[i + 1];
  }
}

TEST(ModuleGraph, SelfEdgeIsIgnored) {
  ModuleGraph g;
  g.add_edge("a", "a");
  EXPECT_TRUE(g.find_cycle().empty());
}

TEST(ModuleGraph, TransitiveDeps) {
  ModuleGraph g;
  g.add_edge("top", "mid");
  g.add_edge("mid", "base");
  g.add_edge("base", "core");
  g.add_edge("side", "core");
  const std::set<std::string> deps = g.transitive_deps("top");
  EXPECT_EQ(deps, (std::set<std::string>{"mid", "base", "core"}));
  EXPECT_TRUE(g.transitive_deps("core").empty());
  EXPECT_EQ(g.transitive_deps("side"),
            (std::set<std::string>{"core"}));
}

TEST(Projection, ModuleOfPath) {
  EXPECT_EQ(module_of_path("src/probe/scanner.cc"), "probe");
  EXPECT_EQ(module_of_path("/root/repo/src/tga/six_hit.h"), "tga");
  // Fixture trees project through their own src/ component.
  EXPECT_EQ(module_of_path("tools/lint/testdata/src/probe/bad.cc"), "probe");
  // Directly under src/: no module.
  EXPECT_EQ(module_of_path("tools/lint/testdata/src/bad_lock.cc"), "");
  EXPECT_EQ(module_of_path("tools/lint/lint.cc"), "");
  // "src" must be a whole component, not a prefix.
  EXPECT_EQ(module_of_path("srcfoo/probe/x.cc"), "");
}

TEST(Projection, SrcRelativeOfPath) {
  EXPECT_EQ(src_relative_of_path("src/probe/scanner.h"), "probe/scanner.h");
  EXPECT_EQ(src_relative_of_path("/a/b/src/net/ipv6.h"), "net/ipv6.h");
  EXPECT_EQ(src_relative_of_path("tools/lint/lint.cc"), "");
}

TEST(Projection, ModuleOfInclude) {
  EXPECT_EQ(module_of_include("fault/fault_plan.h"), "fault");
  EXPECT_EQ(module_of_include("vector"), "");
  EXPECT_EQ(module_of_include("lexer.h"), "");
}

}  // namespace
}  // namespace v6lint
