#include "lexer.h"

#include <cctype>
#include <regex>
#include <sstream>

namespace v6lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool hex_digit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c));
}

/// True when the `"` at `text[i]` opens a raw string literal, i.e. it
/// is preceded by `R` (optionally with a u8/u/U/L encoding prefix) and
/// that `R` is not merely the tail of a longer identifier.
bool is_raw_string_open(const std::string& text, std::size_t i) {
  if (i == 0 || text[i - 1] != 'R') return false;
  // Valid spellings end ...R": R, uR, UR, LR, u8R. `start` is the index
  // of the literal's first prefix char; it must not extend a longer
  // identifier (e.g. `FOOBAR"..."` is not a raw string).
  std::size_t start = i - 1;  // index of 'R'
  if (start > 0) {
    const char before = text[start - 1];
    if (before == 'u' || before == 'U' || before == 'L') {
      start -= 1;
    } else if (before == '8' && start >= 2 && text[start - 2] == 'u') {
      start -= 2;
    }
  }
  return start == 0 || !ident_char(text[start - 1]);
}

}  // namespace

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

LexedFile lex(const std::string& raw) {
  LexedFile out;
  const std::size_t n = raw.size();
  out.code.assign(n, ' ');
  out.with_strings.assign(n, ' ');
  // Comment text only (everything else blanked) — scanned afterwards
  // for v6lint suppression markers, then discarded.
  std::string comments(n, ' ');

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_close;  // `)delim"` that terminates the raw literal

  for (std::size_t i = 0; i < n; ++i) {
    const char c = raw[i];
    const char next = i + 1 < n ? raw[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      out.with_strings[i] = '\n';
      comments[i] = '\n';
      if (state == State::kLineComment) {
        // A backslash-newline splices the comment onto the next line
        // ([lex.phases] p2 runs before comment removal). Tolerate a CR
        // between the backslash and the newline.
        std::size_t b = i;
        while (b > 0 && raw[b - 1] == '\r') --b;
        if (!(b > 0 && raw[b - 1] == '\\')) state = State::kCode;
      }
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && is_raw_string_open(raw, i)) {
          // Collect the d-char sequence up to '(' and precompute the
          // closing `)delim"`.
          std::size_t j = i + 1;
          std::string delim;
          while (j < n && raw[j] != '(' && delim.size() < 16) {
            delim.push_back(raw[j]);
            ++j;
          }
          out.with_strings[i] = '"';
          if (j < n && raw[j] == '(') {
            raw_close = ")" + delim + "\"";
            state = State::kRawString;
            for (std::size_t k = i + 1; k <= j; ++k) {
              if (raw[k] == '\n') out.with_strings[k] = '\n';
              else out.with_strings[k] = raw[k];
            }
            i = j;
          }
          // Malformed raw prefix (no '(' in 16 chars): treat the rest
          // of the token as ordinary code; the compiler rejects it.
        } else if (c == '"') {
          state = State::kString;
          out.with_strings[i] = '"';
        } else if (c == '\'' && i > 0 && hex_digit(raw[i - 1]) &&
                   (hex_digit(next) || next == '\'')) {
          // Digit separator inside a pp-number (1'000'000, 0xFF'FF):
          // plain code, not a char literal.
          out.code[i] = c;
          out.with_strings[i] = c;
        } else if (c == '\'') {
          state = State::kChar;
          out.with_strings[i] = '\'';
        } else {
          out.code[i] = c;
          out.with_strings[i] = c;
        }
        break;
      case State::kLineComment:
        comments[i] = c;
        break;
      case State::kBlockComment:
        comments[i] = c;
        if (c == '*' && next == '/') {
          comments[i + 1] = '/';
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        out.with_strings[i] = c;
        if (c == '\\' && i + 1 < n) {
          if (next != '\n') out.with_strings[i + 1] = next;
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        out.with_strings[i] = c;
        if (c == '\\' && i + 1 < n) {
          if (next != '\n') out.with_strings[i + 1] = next;
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        // No escapes inside a raw literal: scan for the exact closer.
        if (c == ')' && raw.compare(i, raw_close.size(), raw_close) == 0) {
          const std::size_t end = i + raw_close.size() - 1;
          for (std::size_t k = i; k <= end && k < n; ++k) {
            out.with_strings[k] = raw[k];
          }
          i = end;
          state = State::kCode;
        } else {
          out.with_strings[i] = c;
        }
        break;
    }
  }

  out.code_lines = split_lines(out.code);
  out.string_lines = split_lines(out.with_strings);

  // Suppression markers live in comments: `v6lint: allow(<rule>, ...)`.
  static const std::regex kAllow(R"(v6lint:\s*allow\(([A-Za-z0-9_,\s-]+)\))");
  const std::vector<std::string> comment_lines = split_lines(comments);
  for (std::size_t li = 0; li < comment_lines.size(); ++li) {
    const std::string& line = comment_lines[li];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kAllow);
         it != std::sregex_iterator(); ++it) {
      std::string rules = (*it)[1].str();
      std::string rule;
      std::istringstream rs(rules);
      while (std::getline(rs, rule, ',')) {
        const auto b = rule.find_first_not_of(" \t");
        const auto e = rule.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        out.suppressions.push_back({li + 1, rule.substr(b, e - b + 1)});
      }
    }
  }
  return out;
}

}  // namespace v6lint
