#pragma once
// v6lint lexer pass: one state-machine walk over a translation unit's
// raw bytes produces every view the rules consume, so comment/string
// stripping happens exactly once and is correct for the constructs the
// per-rule ad-hoc strippers used to mishandle:
//
//   - raw string literals `R"delim(...)delim"` (with encoding prefixes
//     u8R/uR/UR/LR), whose bodies may contain quotes and comment
//     markers that must not leak into rule matching;
//   - line-spliced `//` comments (a backslash-newline continues the
//     comment onto the next line);
//   - digit separators (`1'000'000`), which are not char literals;
//   - adjacent string literals (`"a" "b"`).
//
// Newlines are preserved in every view so line numbers survive, and
// suppression comments (`// v6lint: allow(rule[, rule...])`) are
// parsed here — the only pass that still sees comment text.

#include <cstddef>
#include <string>
#include <vector>

namespace v6lint {

struct Suppression {
  std::size_t line = 0;  // 1-based line the comment sits on
  std::string rule;      // one suppression entry per allowed rule
};

struct LexedFile {
  /// Comments, string literals, and char literals blanked to spaces.
  std::string code;
  /// Comments blanked, string/char literals kept (metric-name needs
  /// the literals themselves).
  std::string with_strings;
  std::vector<std::string> code_lines;
  std::vector<std::string> string_lines;
  std::vector<Suppression> suppressions;
};

LexedFile lex(const std::string& raw);

std::vector<std::string> split_lines(const std::string& text);

}  // namespace v6lint
