// Regression tests for the v6lint lexer pass — the constructs the old
// per-rule strippers mishandled (raw strings whose bodies contain
// quotes and comment markers, line-spliced comments, digit separators)
// plus the suppression-marker parsing that rides on the same walk.
#include "lexer.h"

#include <gtest/gtest.h>

namespace v6lint {
namespace {

TEST(Lexer, BlanksOrdinaryStringsAndComments) {
  const LexedFile lx = lex("int a; // rand()\nfoo(\"srand\"); /* time( */\n");
  EXPECT_EQ(lx.code_lines[0], "int a;          ");
  EXPECT_EQ(lx.code_lines[1], "foo(       );            ");
  // with_strings keeps literals but not comments.
  EXPECT_EQ(lx.string_lines[1].substr(0, 13), "foo(\"srand\");");
}

TEST(Lexer, RawStringBodyDoesNotLeakIntoCode) {
  // The body contains a quote, a comment opener, and a banned
  // identifier — none may reach the code view; the whole literal must
  // reach the with-strings view.
  const std::string src =
      "auto re = R\"(\\b\"srand\" /* rand( */)\";\nint after = 1;\n";
  const LexedFile lx = lex(src);
  EXPECT_EQ(lx.code_lines[0].find("srand"), std::string::npos);
  EXPECT_EQ(lx.code_lines[0].find("rand"), std::string::npos);
  // The literal closed on line 0: line 1 is ordinary code again.
  EXPECT_EQ(lx.code_lines[1], "int after = 1;");
  EXPECT_NE(lx.string_lines[0].find("srand"), std::string::npos);
}

TEST(Lexer, RawStringCustomDelimiter) {
  // `)"` inside the body must not close a delimited raw string.
  const std::string src = "auto re = R\"rx(a )\" b)rx\"; int tail;\n";
  const LexedFile lx = lex(src);
  EXPECT_EQ(lx.code_lines[0].find("a )"), std::string::npos);
  EXPECT_NE(lx.code_lines[0].find("int tail;"), std::string::npos);
}

TEST(Lexer, RawStringEncodingPrefixes) {
  const LexedFile lx = lex("auto a = u8R\"(srand)\"; auto b = LR\"(time()\";\n");
  EXPECT_EQ(lx.code_lines[0].find("srand"), std::string::npos);
  EXPECT_EQ(lx.code_lines[0].find("time"), std::string::npos);
}

TEST(Lexer, IdentifierEndingInRIsNotARawString) {
  // `FOOBAR"..."` is an identifier then a plain string, not a raw
  // string named by delimiter `...`.
  const std::string src = "int x = FOOBAR\"text\" + 1; int y;\n";
  const LexedFile lx = lex(src);
  EXPECT_NE(lx.code_lines[0].find("FOOBAR"), std::string::npos);
  EXPECT_EQ(lx.code_lines[0].find("text"), std::string::npos);
  EXPECT_NE(lx.code_lines[0].find("int y;"), std::string::npos);
}

TEST(Lexer, LineSplicedCommentContinues) {
  // A backslash-newline splices the // comment onto the next physical
  // line; the old stripper would have surfaced `rand(` as code.
  const std::string src = "int a; // spliced \\\nrand();\nint b;\n";
  const LexedFile lx = lex(src);
  EXPECT_EQ(lx.code_lines[1].find("rand"), std::string::npos);
  EXPECT_EQ(lx.code_lines[2], "int b;");
}

TEST(Lexer, DigitSeparatorsAreNotCharLiterals) {
  // The old stripper opened a char literal at 1'000 and swallowed the
  // code between the separators.
  const std::string src = "int n = 1'000'000 + f(x); char c = 'x';\n";
  const LexedFile lx = lex(src);
  EXPECT_NE(lx.code_lines[0].find("1'000'000"), std::string::npos);
  EXPECT_NE(lx.code_lines[0].find("f(x)"), std::string::npos);
  EXPECT_EQ(lx.code_lines[0].find("'x'"), std::string::npos);
}

TEST(Lexer, AdjacentStringLiterals) {
  const std::string src = "call(\"one\" \"two\", 'a', \"three\");\n";
  const LexedFile lx = lex(src);
  EXPECT_EQ(lx.code_lines[0].find("one"), std::string::npos);
  EXPECT_EQ(lx.code_lines[0].find("two"), std::string::npos);
  EXPECT_EQ(lx.code_lines[0].find("three"), std::string::npos);
  EXPECT_NE(lx.string_lines[0].find("\"one\" \"two\""), std::string::npos);
}

TEST(Lexer, EscapedQuoteStaysInString) {
  const std::string src = "s = \"a\\\"b\"; srand(1);\n";
  const LexedFile lx = lex(src);
  // The escaped quote must not close the literal early...
  EXPECT_EQ(lx.code_lines[0].find('b'), std::string::npos);
  // ...and real code after the literal is still visible.
  EXPECT_NE(lx.code_lines[0].find("srand(1);"), std::string::npos);
}

TEST(Lexer, NewlinesPreservedEverywhere) {
  const std::string src =
      "/* multi\nline\ncomment */ int a;\nR\"(raw\nbody)\" int b;\n";
  const LexedFile lx = lex(src);
  ASSERT_EQ(lx.code_lines.size(), 5u);
  ASSERT_EQ(lx.string_lines.size(), 5u);
  EXPECT_NE(lx.code_lines[2].find("int a;"), std::string::npos);
  EXPECT_NE(lx.code_lines[4].find("int b;"), std::string::npos);
}

TEST(Lexer, ParsesSuppressions) {
  const std::string src =
      "int a;\n"
      "bad(); // v6lint: allow(no-sleep, raw-thread)\n"
      "/* v6lint: allow(layering) */ other();\n";
  const LexedFile lx = lex(src);
  ASSERT_EQ(lx.suppressions.size(), 3u);
  EXPECT_EQ(lx.suppressions[0].line, 2u);
  EXPECT_EQ(lx.suppressions[0].rule, "no-sleep");
  EXPECT_EQ(lx.suppressions[1].line, 2u);
  EXPECT_EQ(lx.suppressions[1].rule, "raw-thread");
  EXPECT_EQ(lx.suppressions[2].line, 3u);
  EXPECT_EQ(lx.suppressions[2].rule, "layering");
}

TEST(Lexer, SuppressionSpellingInStringIsIgnored) {
  const LexedFile lx = lex("log(\"v6lint: allow(no-sleep)\");\n");
  EXPECT_TRUE(lx.suppressions.empty());
}

}  // namespace
}  // namespace v6lint
