// v6lint — project-specific invariants no generic linter knows.
//
// Generic linters (clang-tidy, compiler warnings) know the C++ language;
// they cannot know that this repo reserves randomness for src/net/rng.h,
// that `Telemetry*` is nullable by API contract, or that the PR 2
// compatibility wrappers must never grow new callers. Each rule below
// encodes one such repo invariant; docs/STATIC_ANALYSIS.md carries the
// full rationale per rule.
//
//   deprecated-api       no calls to the removed PR 2 spellings
//                        (run_all_tgas / run_tgas / 3-argument scan_hits)
//                        anywhere — the wrappers are deleted, so any
//                        match is dead code that will not compile.
//   nondeterminism       no wall-clock or ambient-randomness sources in
//                        src/ outside src/net/rng.h: rand/srand/
//                        random_device/time()/system_clock and friends.
//                        Results must be a pure function of the master
//                        seed (steady_clock is allowed: it feeds timing
//                        metrics, never outcomes).
//   pragma-once          every header under src/ starts with
//                        `#pragma once` (first non-comment line).
//   telemetry-null-guard a `telemetry->` dereference must sit within a
//                        few lines of a null check; `telemetry_->`
//                        (trailing underscore: a member established
//                        non-null at construction) is exempt.
//   no-sleep             no wall-clock waits in src/: sleep_for/
//                        sleep_until/usleep/nanosleep/sleep(). Retry and
//                        backoff paths must charge a *virtual* clock
//                        (RateLimiter::advance / ProbeTransport::advance)
//                        so scans stay fast and deterministic.
//   metric-name          metric/span name literals registered in src/
//                        (counter/gauge/timer/histogram calls, Span
//                        constructors) must stay in the project charset
//                        [a-z0-9_.<>:] so trace paths, the report
//                        analyzer's "tga:"/"/" splitting, and JSON keys
//                        stay parseable and grep-stable.
//   raw-thread           no std::thread/std::jthread/pthread_create in
//                        src/ outside src/runtime/: every thread must go
//                        through runtime::WorkerGroup or the ThreadPool,
//                        which own join-on-scope-exit and exception
//                        capture. A raw thread elsewhere can outlive the
//                        state it borrows or swallow failures.
//
// Usage:
//   v6lint <dir>...            scan trees; exit 1 if any rule fires
//   v6lint --selftest <dir>    expect EVERY rule to fire at least once
//                              in <dir> (the seeded-violation fixture);
//                              exit 1 if any rule stays silent
//
// Matching runs on comment- and string-stripped text (so prose
// mentioning run_all_tgas does not trip the linter) except pragma-once,
// which inspects the raw header, and metric-name, which needs the string
// literals themselves and runs on comment-stripped-only text.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Replaces comments, string literals, and char literals with spaces,
/// preserving newlines so line numbers survive.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') ++i;
        else if (c == '"') state = State::kCode;
        break;
      case State::kChar:
        if (c == '\\') ++i;
        else if (c == '\'') state = State::kCode;
        break;
      case State::kLineComment:
        break;
    }
  }
  return out;
}

/// Like strip_comments_and_strings, but keeps string and char literals
/// intact — the metric-name rule inspects the literals themselves.
std::string strip_comments_only(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else {
          if (c == '"') state = State::kString;
          else if (c == '\'') state = State::kChar;
          out[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        out[i] = c;
        if (c == '\\' && i + 1 < text.size()) {
          out[i + 1] = next;
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        out[i] = c;
        if (c == '\\' && i + 1 < text.size()) {
          out[i + 1] = next;
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kLineComment:
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Generic path (forward slashes) for suffix matching against repo-
/// relative spellings like "src/net/rng.h".
std::string generic_path(const fs::path& path) {
  return path.generic_string();
}

bool has_suffix(const std::string& path, std::string_view suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.size() == suffix.size()) return path == suffix;
  return path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         path[path.size() - suffix.size() - 1] == '/';
}

/// True when `path` has a directory component exactly equal to `name`.
bool has_component(const fs::path& path, std::string_view name) {
  for (const fs::path& part : path) {
    if (part.string() == name) return true;
  }
  return false;
}

bool in_src(const fs::path& path) { return has_component(path, "src"); }

// ---------------------------------------------------------------- rules

/// deprecated-api: three generations of retired sweep spellings. The
/// PR 2 positional wrappers are deleted outright; run_sweep(SweepSpec)
/// is a [[deprecated]] forwarder whose only permitted spellings are its
/// own declaration and definition in src/experiment/runner.{h,cc} —
/// every caller belongs on the ScanSession builder.
void check_deprecated_api(const std::string& file, const fs::path& path,
                          const std::vector<std::string>& stripped,
                          std::vector<Violation>& out) {
  static const std::regex kPositional(R"(\b(run_all_tgas|run_tgas)\b)");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kPositional)) {
      out.push_back({file, i + 1, "deprecated-api",
                     "call to deprecated positional sweep API; use "
                     "ScanSession(universe, alias_list).with_*(...).sweep()"});
    }
  }

  const std::string generic = generic_path(path);
  if (!has_suffix(generic, "src/experiment/runner.h") &&
      !has_suffix(generic, "src/experiment/runner.cc")) {
    static const std::regex kRunSweep(R"(\brun_sweep\s*\()");
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      if (std::regex_search(stripped[i], kRunSweep)) {
        out.push_back(
            {file, i + 1, "deprecated-api",
             "run_sweep(SweepSpec) is a deprecated forwarder; use "
             "ScanSession(universe, alias_list).with_*(...).sweep()"});
      }
    }
  }

  // The deprecated scan_hits spelling is the 3-argument out-param
  // overload; count top-level commas inside the call parentheses.
  const std::string joined = [&] {
    std::string s;
    for (const auto& line : stripped) {
      s += line;
      s += '\n';
    }
    return s;
  }();
  static const std::regex kScanHits(R"(\bscan_hits\s*\()");
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(), kScanHits);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int depth = 1;
    int commas = 0;
    while (pos < joined.size() && depth > 0) {
      const char c = joined[pos];
      if (c == '(' || c == '[' || c == '{') ++depth;
      else if (c == ')' || c == ']' || c == '}') --depth;
      else if (c == ',' && depth == 1) ++commas;
      ++pos;
    }
    if (commas >= 2) {
      const std::size_t line =
          1 + static_cast<std::size_t>(
                  std::count(joined.begin(),
                             joined.begin() + it->position(), '\n'));
      out.push_back({file, line, "deprecated-api",
                     "3-argument scan_hits is the deprecated ScanStats* "
                     "out-param overload; use scan_hits(targets, type)"});
    }
  }
}

/// nondeterminism: everything downstream of a seed must be reproducible;
/// ambient entropy or wall-clock reads in src/ (outside the one blessed
/// RNG header) silently break the parallel==sequential equivalence the
/// runner promises.
void check_nondeterminism(const std::string& file, const fs::path& path,
                          const std::vector<std::string>& stripped,
                          std::vector<Violation>& out) {
  if (!in_src(path)) return;
  if (has_suffix(generic_path(path), "src/net/rng.h")) return;

  static const std::regex kBanned(
      R"(\b(srand|random_device|drand48|lrand48|mrand48|rand_r|getpid)\b)"
      R"(|\b(rand|time|clock)\s*\()"
      R"(|\b(system_clock|high_resolution_clock)\b)");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kBanned)) {
      out.push_back({file, i + 1, "nondeterminism",
                     "ambient randomness / wall-clock source; derive it "
                     "from the master seed via net/rng.h instead"});
    }
  }
}

/// pragma-once: headers must open with `#pragma once` (after comments),
/// the include-guard style the whole tree uses.
void check_pragma_once(const std::string& file, const fs::path& path,
                       const std::string& raw, std::vector<Violation>& out) {
  if (!in_src(path) || path.extension() != ".h") return;
  const std::string stripped = strip_comments_and_strings(raw);
  std::istringstream in(stripped);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 12, "#pragma once") == 0) return;
    out.push_back({file, lineno, "pragma-once",
                   "header's first non-comment line must be #pragma once"});
    return;
  }
  out.push_back(
      {file, 1, "pragma-once", "header is missing #pragma once"});
}

/// telemetry-null-guard: a `Telemetry*` is nullable by API contract
/// everywhere (docs/OBSERVABILITY.md); dereferences must sit near an
/// explicit null check. Members spelled `telemetry_` are established
/// non-null at construction and exempt. The window is a heuristic wide
/// enough for the guarded-block idiom the tree uses.
void check_telemetry_guard(const std::string& file, const fs::path& path,
                           const std::vector<std::string>& stripped,
                           std::vector<Violation>& out) {
  if (!in_src(path)) return;
  constexpr std::size_t kWindow = 15;
  static const std::regex kDeref(R"((^|[^_\w])telemetry->)");
  static const std::regex kGuard(
      R"(telemetry\s*(!=|==)\s*nullptr|if\s*\(\s*telemetry\s*\)|telemetry\s*\?)");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (!std::regex_search(stripped[i], kDeref)) continue;
    bool guarded = false;
    const std::size_t start = i >= kWindow ? i - kWindow : 0;
    for (std::size_t j = start; j <= i && !guarded; ++j) {
      guarded = std::regex_search(stripped[j], kGuard);
    }
    if (!guarded) {
      out.push_back({file, i + 1, "telemetry-null-guard",
                     "Telemetry* is nullable by contract; null-check it "
                     "before dereferencing (or hold a telemetry_ member "
                     "established non-null at construction)"});
    }
  }
}

/// no-sleep: the scanner's retry/backoff machinery accounts waits on a
/// virtual clock; a real sleep in src/ would couple scan outcomes (and
/// test wall time) to the host scheduler. Blocking waits belong only in
/// tools/ and tests/, never in the library.
void check_no_sleep(const std::string& file, const fs::path& path,
                    const std::vector<std::string>& stripped,
                    std::vector<Violation>& out) {
  if (!in_src(path)) return;
  static const std::regex kBanned(
      R"(\b(sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\()");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kBanned)) {
      out.push_back({file, i + 1, "no-sleep",
                     "wall-clock wait in the library; charge virtual time "
                     "(RateLimiter::advance / ProbeTransport::advance) "
                     "instead"});
    }
  }
}

/// metric-name: every name the observability layer registers becomes a
/// trace path segment, a JSON object key, and a grep target; spaces,
/// uppercase, or punctuation outside [a-z0-9_.<>:] would break the
/// report analyzer's "tga:NAME/phase" splitting and make dashboards
/// unstable. Checks the *literal* first argument of registration calls
/// and Span constructors in src/ (runtime-composed names inherit the
/// charset from their literal parts).
void check_metric_name(const std::string& file, const fs::path& path,
                       const std::vector<std::string>& with_strings,
                       std::vector<Violation>& out) {
  if (!in_src(path)) return;
  static const std::regex kRegistration(
      R"rx(\b(?:counter|gauge|timer|histogram)\s*\(\s*"([^"]*)")rx"
      R"rx(|\bSpan\s+\w+\s*\([^()"]*"([^"]*)")rx");
  const auto valid = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.' || c == '<' || c == '>' || c == ':';
  };
  for (std::size_t i = 0; i < with_strings.size(); ++i) {
    const std::string& line = with_strings[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kRegistration);
         it != std::sregex_iterator(); ++it) {
      const std::string name =
          (*it)[1].matched ? (*it)[1].str() : (*it)[2].str();
      if (!std::all_of(name.begin(), name.end(), valid)) {
        out.push_back({file, i + 1, "metric-name",
                       "metric/span name '" + name +
                           "' leaves the [a-z0-9_.<>:] charset; names "
                           "become trace paths and JSON keys "
                           "(docs/OBSERVABILITY.md)"});
      }
    }
  }
}

/// raw-thread: thread lifetime and failure propagation are runtime/'s
/// job (WorkerGroup joins on scope exit and rethrows captured
/// exceptions; ThreadPool owns its workers). A bare std::thread anywhere
/// else in the library re-solves both problems badly, so the spawn
/// primitives are confined to src/runtime/.
void check_raw_thread(const std::string& file, const fs::path& path,
                      const std::vector<std::string>& stripped,
                      std::vector<Violation>& out) {
  if (!in_src(path) || has_component(path, "runtime")) return;
  static const std::regex kBanned(
      R"(\bstd\s*::\s*j?thread\b|\bpthread_create\b)");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kBanned)) {
      out.push_back({file, i + 1, "raw-thread",
                     "raw thread spawn outside src/runtime/; use "
                     "runtime::WorkerGroup or the ThreadPool"});
    }
  }
}

/// hitlist-mutation: HitlistStore epochs are immutable and publication
/// is the service's job (src/service/hitlist_store.h). The only code
/// allowed to spell the mutation pair begin_epoch()/publish_epoch() is
/// src/service/ itself; library code elsewhere reads snapshots. Tests
/// and benches exercise the writer path deliberately, so the rule is
/// confined to src/.
void check_hitlist_mutation(const std::string& file, const fs::path& path,
                            const std::vector<std::string>& stripped,
                            std::vector<Violation>& out) {
  if (!in_src(path) || has_component(path, "service")) return;
  static const std::regex kMutation(R"(\b(begin_epoch|publish_epoch)\s*\()");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kMutation)) {
      out.push_back({file, i + 1, "hitlist-mutation",
                     "HitlistStore epoch mutation outside src/service/; "
                     "publication belongs to the service refresh loop — "
                     "read snapshots instead"});
    }
  }
}

const char* const kAllRules[] = {"deprecated-api", "nondeterminism",
                                 "pragma-once", "telemetry-null-guard",
                                 "no-sleep", "metric-name", "raw-thread",
                                 "hitlist-mutation"};

bool lintable(const fs::path& path) {
  const auto ext = path.extension();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool skip_dir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

void lint_file(const fs::path& path, std::vector<Violation>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.push_back({path.string(), 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = std::move(buffer).str();
  const std::vector<std::string> stripped =
      split_lines(strip_comments_and_strings(raw));
  const std::vector<std::string> with_strings =
      split_lines(strip_comments_only(raw));
  const std::string file = path.string();

  check_deprecated_api(file, path, stripped, out);
  check_nondeterminism(file, path, stripped, out);
  check_pragma_once(file, path, raw, out);
  check_telemetry_guard(file, path, stripped, out);
  check_no_sleep(file, path, stripped, out);
  check_metric_name(file, path, with_strings, out);
  check_raw_thread(file, path, stripped, out);
  check_hitlist_mutation(file, path, stripped, out);
}

}  // namespace

int main(int argc, char** argv) {
  bool selftest = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: v6lint [--selftest] <dir|file>...\n");
      return 0;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "v6lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<Violation> violations;
  std::size_t files = 0;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      ++files;
      lint_file(root, violations);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "v6lint: no such file or directory: %s\n",
                   root.string().c_str());
      return 2;
    }
    // The seeded-violation fixture is skipped on tree scans but linted
    // when named as a root (the selftest and WILL_FAIL ctests).
    const bool root_is_fixture = has_component(root, "testdata");
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!root_is_fixture && has_component(it->path(), "testdata")) continue;
      if (it->is_regular_file() && lintable(it->path())) {
        ++files;
        lint_file(it->path(), violations);
      }
    }
  }

  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }

  if (selftest) {
    // The fixture must make every rule fire: a rule that cannot detect
    // its own seeded violation is dead code, not a guarantee.
    std::set<std::string> fired;
    for (const Violation& v : violations) fired.insert(v.rule);
    bool ok = true;
    for (const char* rule : kAllRules) {
      if (fired.count(rule) == 0) {
        std::fprintf(stderr, "v6lint: selftest: rule '%s' never fired\n",
                     rule);
        ok = false;
      }
    }
    std::fprintf(stderr, "v6lint: selftest %s (%zu files, %zu violations)\n",
                 ok ? "ok" : "FAILED", files, violations.size());
    return ok ? 0 : 1;
  }

  std::fprintf(stderr, "v6lint: %zu files, %zu violations\n", files,
               violations.size());
  return violations.empty() ? 0 : 1;
}
