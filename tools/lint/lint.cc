// v6lint v2 — project-specific invariants no generic linter knows,
// reorganized as a small multi-pass analysis framework:
//
//   pass 1  lexer (lexer.cc): one state-machine walk per file yields
//           the code view (comments/strings blanked, raw-string
//           correct), the with-strings view, and the suppression
//           markers. Rules never re-strip text.
//   pass 2  indexing (rules.cc:index_file): quoted #include directives
//           with line numbers, and identifiers declared with
//           std::unordered_{map,set} types.
//   pass 3  include graph (include_graph.cc): the project-internal
//           include DAG projected onto src/ modules, checked against
//           the declared layering in tools/lint/layers.txt and
//           asserted cycle-free.
//   pass 4  rules (rules.cc): eleven rule families over the shared
//           index; docs/STATIC_ANALYSIS.md carries the rationale per
//           rule. A twelfth, unused-suppression, runs here in the
//           driver after suppressions are applied.
//
// Inline suppressions: `// v6lint: allow(rule[, rule...])` suppresses
// matching violations on its own line and the line directly below (for
// the comment-on-its-own-line style). A suppression that suppresses
// nothing is itself a violation, so stale allows fail lint_tree.
//
// Usage:
//   v6lint [flags] <dir|file>...
//     --selftest        expect EVERY rule to fire at least once (the
//                       seeded-violation fixture); exit 1 otherwise
//     --format=json     machine-readable report on stdout (violations,
//                       per-rule timing, wall time) for CI artifacts
//     --stats           print the per-pass/per-rule timing table
//     --jobs N          worker threads for the lex and rule passes
//     --max-wall-ms N   exit 1 if the whole run exceeds N ms (the
//                       check.sh --quick latency gate)
//     --layers PATH     override the layering spec (default:
//                       tools/lint/layers.txt, baked in at build time)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "include_graph.h"
#include "lexer.h"
#include "rules.h"

namespace {

namespace fs = std::filesystem;
using v6lint::FileIndex;
using v6lint::LayerSpec;
using v6lint::ModuleGraph;
using v6lint::Suppression;
using v6lint::Violation;

#ifndef V6LINT_LAYERS
#define V6LINT_LAYERS "tools/lint/layers.txt"
#endif

struct Options {
  bool selftest = false;
  bool json = false;
  bool stats = false;
  unsigned jobs = 0;  // 0: pick from hardware_concurrency
  long max_wall_ms = -1;
  std::string layers_path = V6LINT_LAYERS;
  std::vector<fs::path> roots;
};

bool lintable(const fs::path& path) {
  const auto ext = path.extension();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool skip_dir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.rfind("build", 0) == 0 || name.rfind("testdata", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

/// True when `path` has a directory component starting with `prefix`.
bool has_component_prefix(const fs::path& path, std::string_view prefix) {
  for (const fs::path& part : path) {
    if (part.string().rfind(prefix, 0) == 0) return true;
  }
  return false;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs `fn(i)` for i in [0, n) across `jobs` threads. Deterministic
/// output is the caller's job (each i owns its own result slot).
void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  const unsigned count = std::min<std::size_t>(jobs, n);
  workers.reserve(count);
  for (unsigned w = 0; w < count; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : workers) t.join();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--selftest") {
      opt.selftest = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--format=json") {
      opt.json = true;
    } else if (arg == "--format=text") {
      opt.json = false;
    } else if (arg == "--jobs" && i + 1 < argc) {
      opt.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opt.jobs = static_cast<unsigned>(std::atoi(arg.data() + 7));
    } else if (arg == "--max-wall-ms" && i + 1 < argc) {
      opt.max_wall_ms = std::atol(argv[++i]);
    } else if (arg.rfind("--max-wall-ms=", 0) == 0) {
      opt.max_wall_ms = std::atol(arg.data() + 14);
    } else if (arg == "--layers" && i + 1 < argc) {
      opt.layers_path = argv[++i];
    } else if (arg.rfind("--layers=", 0) == 0) {
      opt.layers_path = std::string(arg.substr(9));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: v6lint [--selftest] [--format=json] [--stats] [--jobs N]\n"
          "              [--max-wall-ms N] [--layers PATH] <dir|file>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "v6lint: unknown flag '%s' (try --help)\n",
                   argv[i]);
      return 2;
    } else {
      opt.roots.emplace_back(arg);
    }
  }
  if (opt.roots.empty()) {
    std::fprintf(stderr, "v6lint: no paths given (try --help)\n");
    return 2;
  }
  if (opt.jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt.jobs = hw == 0 ? 1 : std::min(hw, 8u);
  }

  // ---- collect files -----------------------------------------------------
  std::vector<fs::path> paths;
  for (const fs::path& root : opt.roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "v6lint: no such file or directory: %s\n",
                   root.string().c_str());
      return 2;
    }
    // The seeded-violation fixtures are skipped on tree scans but
    // linted when named as a root (the selftest and WILL_FAIL ctests).
    const bool root_is_fixture = has_component_prefix(root, "testdata");
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        const bool is_fixture_dir = name.rfind("testdata", 0) == 0;
        if (skip_dir(it->path()) && !(root_is_fixture && is_fixture_dir)) {
          it.disable_recursion_pending();
          continue;
        }
      }
      if (it->is_regular_file() && lintable(it->path())) {
        paths.push_back(it->path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // ---- pass 1+2: lex and index (parallel) --------------------------------
  const auto t_lex = std::chrono::steady_clock::now();
  std::vector<FileIndex> files(paths.size());
  std::atomic<bool> io_error{false};
  parallel_for(paths.size(), opt.jobs, [&](std::size_t i) {
    FileIndex& fi = files[i];
    fi.path = paths[i];
    fi.file = paths[i].string();
    fi.generic = paths[i].generic_string();
    fi.module = v6lint::module_of_path(fi.generic);
    fi.in_src = v6lint::src_relative_of_path(fi.generic) != "";
    std::ifstream in(paths[i], std::ios::binary);
    if (!in) {
      io_error.store(true);
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fi.lx = v6lint::lex(std::move(buffer).str());
    v6lint::index_file(fi);
  });
  if (io_error.load()) {
    std::fprintf(stderr, "v6lint: cannot open an input file\n");
    return 2;
  }
  const double lex_ms = ms_since(t_lex);

  // ---- pass 3: project index + layering spec -----------------------------
  v6lint::ProjectIndex project;
  project.files = &files;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string rel = v6lint::src_relative_of_path(files[i].generic);
    if (!rel.empty()) project.by_src_relative.emplace(rel, i);
  }

  LayerSpec layers;
  {
    std::ifstream in(opt.layers_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "v6lint: cannot open layering spec: %s\n",
                   opt.layers_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = LayerSpec::parse(std::move(buffer).str(), error);
    if (!parsed) {
      std::fprintf(stderr, "v6lint: %s\n", error.c_str());
      return 2;
    }
    layers = *parsed;
  }
  project.layers = &layers;

  // ---- pass 4: rules (parallel, per-rule timing) -------------------------
  const std::vector<v6lint::Rule>& rules = v6lint::all_rules();
  std::vector<std::atomic<long long>> rule_ns(rules.size());
  for (auto& ns : rule_ns) ns.store(0);
  std::vector<std::vector<Violation>> per_file(files.size());
  parallel_for(files.size(), opt.jobs, [&](std::size_t i) {
    const v6lint::RuleContext ctx{files[i], project};
    for (std::size_t r = 0; r < rules.size(); ++r) {
      const auto rt0 = std::chrono::steady_clock::now();
      rules[r].fn(ctx, per_file[i]);
      rule_ns[r].fetch_add(std::chrono::nanoseconds(
                               std::chrono::steady_clock::now() - rt0)
                               .count(),
                           std::memory_order_relaxed);
    }
  });

  // The observed module-level include graph must stay cycle-free even
  // where every individual edge is declared (layers.txt itself is
  // validated as a DAG at load; this asserts the *tree* as scanned).
  std::vector<Violation> project_violations;
  {
    ModuleGraph observed;
    for (const FileIndex& fi : files) {
      if (!fi.in_src || fi.module.empty()) continue;
      for (const v6lint::IncludeRef& inc : fi.includes) {
        const std::string to = v6lint::module_of_include(inc.target);
        if (!to.empty() &&
            (layers.declared(to) ||
             project.by_src_relative.count(inc.target) != 0)) {
          observed.add_edge(fi.module, to);
        }
      }
    }
    const std::vector<std::string> cycle = observed.find_cycle();
    if (!cycle.empty()) {
      std::string path;
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        path += (i ? " -> " : "") + cycle[i];
      }
      project_violations.push_back(
          {opt.layers_path, 0, "layering",
           "observed include graph has a module cycle: " + path});
    }
  }

  // ---- suppressions ------------------------------------------------------
  std::vector<Violation> violations;
  std::size_t suppressed = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::vector<Suppression>& sup = files[i].lx.suppressions;
    std::vector<bool> used(sup.size(), false);
    for (Violation& v : per_file[i]) {
      bool drop = false;
      for (std::size_t s = 0; s < sup.size(); ++s) {
        if (sup[s].rule == v.rule &&
            (sup[s].line == v.line || sup[s].line + 1 == v.line)) {
          used[s] = true;
          drop = true;
        }
      }
      if (drop) ++suppressed;
      else violations.push_back(std::move(v));
    }
    for (std::size_t s = 0; s < sup.size(); ++s) {
      if (!used[s]) {
        violations.push_back(
            {files[i].file, sup[s].line, v6lint::kUnusedSuppressionRule,
             "suppression 'v6lint: allow(" + sup[s].rule +
                 ")' matches no violation; delete the stale allow"});
      }
    }
  }
  violations.insert(violations.end(), project_violations.begin(),
                    project_violations.end());
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });

  const double wall_ms = ms_since(t0);
  const bool over_budget = opt.max_wall_ms >= 0 &&
                           wall_ms > static_cast<double>(opt.max_wall_ms);

  // ---- output ------------------------------------------------------------
  std::vector<std::size_t> rule_hits(rules.size(), 0);
  for (const Violation& v : violations) {
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (v.rule == rules[r].name) ++rule_hits[r];
    }
  }

  if (opt.json) {
    std::string out = "{\n";
    out += "  \"files\": " + std::to_string(files.size()) + ",\n";
    out += "  \"suppressed\": " + std::to_string(suppressed) + ",\n";
    out += "  \"violations\": [\n";
    for (std::size_t i = 0; i < violations.size(); ++i) {
      const Violation& v = violations[i];
      out += "    {\"file\": \"" + json_escape(v.file) + "\", \"line\": " +
             std::to_string(v.line) + ", \"rule\": \"" + json_escape(v.rule) +
             "\", \"message\": \"" + json_escape(v.message) + "\"}";
      out += i + 1 < violations.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
    out += "  \"stats\": {\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f", wall_ms);
    out += "    \"wall_ms\": " + std::string(buf) + ",\n";
    std::snprintf(buf, sizeof buf, "%.1f", lex_ms);
    out += "    \"lex_ms\": " + std::string(buf) + ",\n";
    out += "    \"jobs\": " + std::to_string(opt.jobs) + ",\n";
    if (opt.max_wall_ms >= 0) {
      out += "    \"max_wall_ms\": " + std::to_string(opt.max_wall_ms) + ",\n";
    }
    out += "    \"rules\": [\n";
    for (std::size_t r = 0; r < rules.size(); ++r) {
      std::snprintf(buf, sizeof buf, "%.2f",
                    static_cast<double>(rule_ns[r].load()) / 1e6);
      out += "      {\"rule\": \"" + std::string(rules[r].name) +
             "\", \"ms\": " + buf +
             ", \"violations\": " + std::to_string(rule_hits[r]) + "}";
      out += r + 1 < rules.size() ? ",\n" : "\n";
    }
    out += "    ]\n  },\n";
    out += std::string("  \"clean\": ") +
           (violations.empty() && !over_budget ? "true" : "false") + "\n}\n";
    std::fputs(out.c_str(), stdout);
  }

  // GCC diagnostic format (file:line: rule: message) so editors and CI
  // log scrapers link straight to the offending line.
  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }

  if (opt.stats && !opt.json) {
    std::fprintf(stderr,
                 "v6lint: stats: wall %.1f ms, lex %.1f ms, %u jobs\n",
                 wall_ms, lex_ms, opt.jobs);
    for (std::size_t r = 0; r < rules.size(); ++r) {
      std::fprintf(stderr, "v6lint: stats:   %-22s %8.2f ms %6zu violations\n",
                   rules[r].name,
                   static_cast<double>(rule_ns[r].load()) / 1e6,
                   rule_hits[r]);
    }
  }

  if (over_budget) {
    std::fprintf(stderr,
                 "v6lint: wall time %.1f ms exceeds --max-wall-ms %ld\n",
                 wall_ms, opt.max_wall_ms);
  }

  if (opt.selftest) {
    // The fixture must make every rule fire: a rule that cannot detect
    // its own seeded violation is dead code, not a guarantee.
    std::set<std::string> fired;
    for (const Violation& v : violations) fired.insert(v.rule);
    bool ok = true;
    for (const std::string& rule : v6lint::all_rule_names()) {
      if (fired.count(rule) == 0) {
        std::fprintf(stderr, "v6lint: selftest: rule '%s' never fired\n",
                     rule.c_str());
        ok = false;
      }
    }
    std::fprintf(stderr, "v6lint: selftest %s (%zu files, %zu violations)\n",
                 ok ? "ok" : "FAILED", files.size(), violations.size());
    return ok ? 0 : 1;
  }

  std::fprintf(stderr,
               "v6lint: %zu files, %zu violations, %zu suppressed\n",
               files.size(), violations.size(), suppressed);
  return violations.empty() && !over_budget ? 0 : 1;
}
