#include "rules.h"

#include <algorithm>
#include <cctype>
#include <regex>

namespace v6lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool has_suffix(const std::string& path, std::string_view suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.size() == suffix.size()) return path == suffix;
  return path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         path[path.size() - suffix.size() - 1] == '/';
}

// ---------------------------------------------------------------- rules
// The original eight rules, ported onto the shared index (they used to
// each re-strip the file); rationale per rule in docs/STATIC_ANALYSIS.md.

/// deprecated-api: three generations of retired sweep spellings. The
/// PR 2 positional wrappers are deleted outright; run_sweep(SweepSpec)
/// is a [[deprecated]] forwarder whose only permitted spellings are its
/// own declaration and definition in src/experiment/runner.{h,cc} —
/// every caller belongs on the ScanSession builder.
void check_deprecated_api(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  static const std::regex kPositional(R"(\b(run_all_tgas|run_tgas)\b)");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kPositional)) {
      out.push_back({fi.file, i + 1, "deprecated-api",
                     "call to deprecated positional sweep API; use "
                     "ScanSession(universe, alias_list).with_*(...).sweep()"});
    }
  }

  if (!has_suffix(fi.generic, "src/experiment/runner.h") &&
      !has_suffix(fi.generic, "src/experiment/runner.cc")) {
    static const std::regex kRunSweep(R"(\brun_sweep\s*\()");
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      if (std::regex_search(stripped[i], kRunSweep)) {
        out.push_back(
            {fi.file, i + 1, "deprecated-api",
             "run_sweep(SweepSpec) is a deprecated forwarder; use "
             "ScanSession(universe, alias_list).with_*(...).sweep()"});
      }
    }
  }

  // The deprecated scan_hits spelling is the 3-argument out-param
  // overload; count top-level commas inside the call parentheses.
  const std::string& joined = fi.lx.code;
  static const std::regex kScanHits(R"(\bscan_hits\s*\()");
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(), kScanHits);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int depth = 1;
    int commas = 0;
    while (pos < joined.size() && depth > 0) {
      const char c = joined[pos];
      if (c == '(' || c == '[' || c == '{') ++depth;
      else if (c == ')' || c == ']' || c == '}') --depth;
      else if (c == ',' && depth == 1) ++commas;
      ++pos;
    }
    if (commas >= 2) {
      const std::size_t line =
          1 + static_cast<std::size_t>(
                  std::count(joined.begin(),
                             joined.begin() + it->position(), '\n'));
      out.push_back({fi.file, line, "deprecated-api",
                     "3-argument scan_hits is the deprecated ScanStats* "
                     "out-param overload; use scan_hits(targets, type)"});
    }
  }
}

/// nondeterminism: everything downstream of a seed must be reproducible;
/// ambient entropy or wall-clock reads in src/ (outside the one blessed
/// RNG header) silently break the parallel==sequential equivalence the
/// runner promises.
void check_nondeterminism(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src) return;
  if (has_suffix(fi.generic, "src/net/rng.h")) return;

  static const std::regex kBanned(
      R"(\b(srand|random_device|drand48|lrand48|mrand48|rand_r|getpid)\b)"
      R"(|\b(rand|time|clock)\s*\()"
      R"(|\b(system_clock|high_resolution_clock)\b)");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kBanned)) {
      out.push_back({fi.file, i + 1, "nondeterminism",
                     "ambient randomness / wall-clock source; derive it "
                     "from the master seed via net/rng.h instead"});
    }
  }
}

/// pragma-once: headers must open with `#pragma once` (after comments),
/// the include-guard style the whole tree uses.
void check_pragma_once(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src || !fi.is_header) return;
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 12, "#pragma once") == 0) return;
    out.push_back({fi.file, i + 1, "pragma-once",
                   "header's first non-comment line must be #pragma once"});
    return;
  }
  out.push_back(
      {fi.file, 1, "pragma-once", "header is missing #pragma once"});
}

/// telemetry-null-guard: a `Telemetry*` is nullable by API contract
/// everywhere (docs/OBSERVABILITY.md); dereferences must sit near an
/// explicit null check. Members spelled `telemetry_` are established
/// non-null at construction and exempt. The window is a heuristic wide
/// enough for the guarded-block idiom the tree uses.
void check_telemetry_guard(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src) return;
  constexpr std::size_t kWindow = 15;
  static const std::regex kDeref(R"((^|[^_\w])telemetry->)");
  static const std::regex kGuard(
      R"(telemetry\s*(!=|==)\s*nullptr|if\s*\(\s*telemetry\s*\)|telemetry\s*\?)");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (!std::regex_search(stripped[i], kDeref)) continue;
    bool guarded = false;
    const std::size_t start = i >= kWindow ? i - kWindow : 0;
    for (std::size_t j = start; j <= i && !guarded; ++j) {
      guarded = std::regex_search(stripped[j], kGuard);
    }
    if (!guarded) {
      out.push_back({fi.file, i + 1, "telemetry-null-guard",
                     "Telemetry* is nullable by contract; null-check it "
                     "before dereferencing (or hold a telemetry_ member "
                     "established non-null at construction)"});
    }
  }
}

/// no-sleep: the scanner's retry/backoff machinery accounts waits on a
/// virtual clock; a real sleep in src/ would couple scan outcomes (and
/// test wall time) to the host scheduler. Blocking waits belong only in
/// tools/ and tests/, never in the library.
void check_no_sleep(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src) return;
  static const std::regex kBanned(
      R"(\b(sleep_for|sleep_until|usleep|nanosleep|sleep)\s*\()");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kBanned)) {
      out.push_back({fi.file, i + 1, "no-sleep",
                     "wall-clock wait in the library; charge virtual time "
                     "(RateLimiter::advance / ProbeTransport::advance) "
                     "instead"});
    }
  }
}

/// metric-name: every name the observability layer registers becomes a
/// trace path segment, a JSON object key, and a grep target; spaces,
/// uppercase, or punctuation outside [a-z0-9_.<>:] would break the
/// report analyzer's "tga:NAME/phase" splitting and make dashboards
/// unstable. Checks the *literal* first argument of registration calls
/// and Span constructors in src/ (runtime-composed names inherit the
/// charset from their literal parts).
void check_metric_name(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src) return;
  static const std::regex kRegistration(
      R"rx(\b(?:counter|gauge|timer|histogram)\s*\(\s*"([^"]*)")rx"
      R"rx(|\bSpan\s+\w+\s*\([^()"]*"([^"]*)")rx");
  const auto valid = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.' || c == '<' || c == '>' || c == ':';
  };
  const std::vector<std::string>& with_strings = fi.lx.string_lines;
  for (std::size_t i = 0; i < with_strings.size(); ++i) {
    const std::string& line = with_strings[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kRegistration);
         it != std::sregex_iterator(); ++it) {
      const std::string name =
          (*it)[1].matched ? (*it)[1].str() : (*it)[2].str();
      if (!std::all_of(name.begin(), name.end(), valid)) {
        out.push_back({fi.file, i + 1, "metric-name",
                       "metric/span name '" + name +
                           "' leaves the [a-z0-9_.<>:] charset; names "
                           "become trace paths and JSON keys "
                           "(docs/OBSERVABILITY.md)"});
      }
    }
  }
}

/// raw-thread: thread lifetime and failure propagation are runtime/'s
/// job (WorkerGroup joins on scope exit and rethrows captured
/// exceptions; ThreadPool owns its workers). A bare std::thread anywhere
/// else in the library re-solves both problems badly, so the spawn
/// primitives are confined to src/runtime/.
void check_raw_thread(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src || fi.module == "runtime") return;
  static const std::regex kBanned(
      R"(\bstd\s*::\s*j?thread\b|\bpthread_create\b)");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kBanned)) {
      out.push_back({fi.file, i + 1, "raw-thread",
                     "raw thread spawn outside src/runtime/; use "
                     "runtime::WorkerGroup or the ThreadPool"});
    }
  }
}

/// hitlist-mutation: HitlistStore epochs are immutable and publication
/// is the service's job (src/service/hitlist_store.h). The only code
/// allowed to spell the mutation pair begin_epoch()/publish_epoch() is
/// src/service/ itself; library code elsewhere reads snapshots. Tests
/// and benches exercise the writer path deliberately, so the rule is
/// confined to src/.
void check_hitlist_mutation(const RuleContext& ctx,
                            std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src || fi.module == "service") return;
  static const std::regex kMutation(R"(\b(begin_epoch|publish_epoch)\s*\()");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kMutation)) {
      out.push_back({fi.file, i + 1, "hitlist-mutation",
                     "HitlistStore epoch mutation outside src/service/; "
                     "publication belongs to the service refresh loop — "
                     "read snapshots instead"});
    }
  }
}

/// materialized-span: Universe::hosts_ / hosts() is the materialized
/// host table — it exists only for differential tests against the
/// procedural model and V6_REQUIREs a materialized build. Library code
/// that touches it silently reintroduces the O(hosts) memory the
/// procedural universe removed (docs/SCALE.md) and crashes on the
/// 100M+-host configurations. Outside src/simnet/, host state is
/// reached through lookup_host(), for_each_host(), or probe().
void check_materialized_span(const RuleContext& ctx,
                             std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src || fi.module == "simnet") return;
  static const std::regex kSpan(R"(\bhosts_\b|\bhosts\s*\(\s*\))");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kSpan)) {
      out.push_back({fi.file, i + 1, "materialized-span",
                     "materialized host-table access outside src/simnet/; "
                     "hosts() requires a materialized build and scales "
                     "O(hosts) — use lookup_host(), for_each_host(), or "
                     "probe() instead"});
    }
  }
}

// ------------------------------------------------------- new rule families

/// layering: the declared module DAG in tools/lint/layers.txt is the
/// architecture; an include that crosses modules along an undeclared
/// edge is a violation, reported with the edge it would add. This turns
/// "src/probe must not know about src/fault" from reviewer memory into
/// a gate.
void check_layering(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  const LayerSpec* layers = ctx.project.layers;
  if (!fi.in_src || fi.module.empty() || layers == nullptr) return;

  if (!layers->declared(fi.module)) {
    out.push_back({fi.file, 1, "layering",
                   "module '" + fi.module +
                       "' is not declared in tools/lint/layers.txt; every "
                       "src/ module must appear in the layering DAG"});
    return;
  }
  for (const IncludeRef& inc : fi.includes) {
    const std::string target_module = module_of_include(inc.target);
    if (target_module.empty() || target_module == fi.module) continue;
    if (layers->declared(target_module)) {
      if (!layers->edge_allowed(fi.module, target_module)) {
        out.push_back(
            {fi.file, inc.line, "layering",
             "include of \"" + inc.target + "\" adds module edge " +
                 fi.module + " -> " + target_module +
                 ", which tools/lint/layers.txt does not allow"});
      }
    } else if (ctx.project.by_src_relative.count(inc.target) != 0) {
      out.push_back({fi.file, inc.line, "layering",
                     "include of \"" + inc.target + "\" targets module '" +
                         target_module +
                         "', which is not declared in tools/lint/layers.txt"});
    }
  }
}

/// unordered-iteration: iterating a std::unordered_{map,set} walks hash
/// order — a function of libstdc++ internals and insertion history, not
/// of the master seed. Anything such a loop feeds (scan output, model
/// state, files) is silently non-reproducible across toolchains. The
/// index records every identifier declared with an unordered type in
/// the file or its direct project includes; range-fors and
/// begin()/end() over those identifiers are flagged. Provably
/// order-insensitive loops (fully re-sorted with a total order, or
/// commutative accumulation) carry an inline
/// `v6lint: allow(<this rule>)` with a justification.
void check_unordered_iteration(const RuleContext& ctx,
                               std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src) return;

  std::set<std::string> names(fi.unordered_names.begin(),
                              fi.unordered_names.end());
  if (ctx.project.files != nullptr) {
    for (const IncludeRef& inc : fi.includes) {
      const auto it = ctx.project.by_src_relative.find(inc.target);
      if (it == ctx.project.by_src_relative.end()) continue;
      const FileIndex& dep = (*ctx.project.files)[it->second];
      names.insert(dep.unordered_names.begin(), dep.unordered_names.end());
    }
  }
  if (names.empty()) return;

  static const std::regex kRangeFor(
      R"(\bfor\s*\([^;)]*[^;:)]:\s*\*?([A-Za-z_]\w*)\s*\))");
  // Deliberately `begin` only: every real traversal spells a begin (a
  // range-for, an explicit iterator loop, or a materializing copy),
  // while `.end()` alone is almost always the `it != m.end()` guard of
  // a find() — a point lookup, not an ordering hazard.
  static const std::regex kIterator(
      R"(\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\()");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    std::set<std::string> hit;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kRangeFor);
         it != std::sregex_iterator(); ++it) {
      if (names.count((*it)[1].str())) hit.insert((*it)[1].str());
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kIterator);
         it != std::sregex_iterator(); ++it) {
      if (names.count((*it)[1].str())) hit.insert((*it)[1].str());
    }
    for (const std::string& name : hit) {
      out.push_back(
          {fi.file, i + 1, "unordered-iteration",
           "iteration over std::unordered_{map,set} '" + name +
               "' walks hash order, which is not a function of the master "
               "seed; materialize and sort, or justify with "
               "// v6lint: allow(unordered-iteration)"});
    }
  }
}

/// lock-discipline: mutexes in the library are held through RAII
/// guards (lock_guard/scoped_lock/unique_lock) so early returns and
/// exceptions cannot leak a held lock. Manual .lock()/.unlock() calls
/// are allowed only inside src/runtime/, whose queue primitives
/// deliberately drop the lock around notify.
void check_lock_discipline(const RuleContext& ctx,
                           std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src || fi.module == "runtime") return;
  static const std::regex kBare(
      R"(\b[A-Za-z_]\w*\s*(?:\.|->)\s*(?:try_)?(?:lock|unlock)\s*\(\s*\))");
  const std::vector<std::string>& stripped = fi.lx.code_lines;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], kBare)) {
      out.push_back({fi.file, i + 1, "lock-discipline",
                     "bare lock()/unlock() outside src/runtime/; hold "
                     "mutexes through std::lock_guard/scoped_lock/"
                     "unique_lock so no path can leak a held lock"});
    }
  }
}

/// raw-socket: the library is a simulation — its network is simnet's
/// procedural model, and nothing in src/ talks to the host network
/// stack. The one exception is the admin endpoint (src/obs/admin/),
/// whose loopback HTTP server exists precisely to expose the
/// introspection plane (docs/OBSERVABILITY.md). Everywhere else in
/// src/, a socket-API include is a sign that real I/O is leaking into
/// the deterministic core. Scans the raw line text: angle includes are
/// blanked from the code view, so this reads string_lines.
void check_raw_socket(const RuleContext& ctx, std::vector<Violation>& out) {
  const FileIndex& fi = ctx.file;
  if (!fi.in_src) return;
  if (fi.generic.find("src/obs/admin/") != std::string::npos) return;
  static const std::regex kSocketInclude(
      R"(^\s*#\s*include\s*<(sys/socket\.h|netinet/[^>]+|arpa/inet\.h)"
      R"(|sys/un\.h|netdb\.h|poll\.h|sys/poll\.h)>)");
  const std::vector<std::string>& with_strings = fi.lx.string_lines;
  for (std::size_t i = 0; i < with_strings.size(); ++i) {
    if (std::regex_search(with_strings[i], kSocketInclude)) {
      out.push_back({fi.file, i + 1, "raw-socket",
                     "socket-API include outside src/obs/admin/; the "
                     "library's network is the simulation — real sockets "
                     "are confined to the admin endpoint "
                     "(docs/STATIC_ANALYSIS.md)"});
    }
  }
}

}  // namespace

void index_file(FileIndex& fi) {
  fi.is_header = fi.path.extension() == ".h";

  // Quoted includes: the target is a string literal, so read it from
  // the comments-stripped-only view.
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");
  std::smatch m;
  for (std::size_t i = 0; i < fi.lx.string_lines.size(); ++i) {
    if (std::regex_search(fi.lx.string_lines[i], m, kInclude)) {
      fi.includes.push_back({i + 1, m[1].str()});
    }
  }

  // Identifiers declared with an unordered container type: find each
  // `unordered_map/set/multimap/multiset`, skip its balanced template
  // argument list, then accept `[const|*|&|&&]* identifier` followed by
  // a declarator context (`;`, `=`, `,`, `)`, `{`, `[`). Skips member
  // access like `m.begin()`, alias targets (`using X = ...;` ends in
  // `;` before an identifier), and return types (identifier followed
  // by `(`).
  const std::string& code = fi.lx.code;
  for (std::size_t pos = code.find("unordered_"); pos != std::string::npos;
       pos = code.find("unordered_", pos + 1)) {
    if (pos > 0 && ident_char(code[pos - 1])) continue;
    std::size_t after = pos + 10;
    bool known = false;
    for (const char* kind : {"multimap", "multiset", "map", "set"}) {
      const std::size_t len = std::string_view(kind).size();
      if (code.compare(after, len, kind) == 0 &&
          (after + len >= code.size() || !ident_char(code[after + len]))) {
        after += len;
        known = true;
        break;
      }
    }
    if (!known) continue;

    std::size_t i = after;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])))
      ++i;
    if (i >= code.size() || code[i] != '<') continue;
    int depth = 0;
    bool bad = false;
    for (; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '<') ++depth;
      else if (c == '>') {
        if (--depth == 0) { ++i; break; }
      } else if (c == ';' || c == '{') {
        bad = true;  // ran off the declaration: not a type usage
        break;
      }
    }
    if (bad || depth != 0) continue;

    // Modifiers between the type and the declared name.
    while (i < code.size()) {
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])))
        ++i;
      if (code.compare(i, 5, "const") == 0 &&
          (i + 5 >= code.size() || !ident_char(code[i + 5]))) {
        i += 5;
      } else if (i < code.size() && (code[i] == '*' || code[i] == '&')) {
        ++i;
      } else {
        break;
      }
    }
    std::size_t name_begin = i;
    while (i < code.size() && ident_char(code[i])) ++i;
    if (i == name_begin) continue;
    const std::string name = code.substr(name_begin, i - name_begin);
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])))
      ++i;
    const char nextc = i < code.size() ? code[i] : '\0';
    if (nextc == ';' || nextc == '=' || nextc == ',' || nextc == ')' ||
        nextc == '{' || nextc == '[') {
      fi.unordered_names.push_back(name);
    }
  }
}

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = {
      {"deprecated-api", check_deprecated_api},
      {"nondeterminism", check_nondeterminism},
      {"pragma-once", check_pragma_once},
      {"telemetry-null-guard", check_telemetry_guard},
      {"no-sleep", check_no_sleep},
      {"metric-name", check_metric_name},
      {"raw-thread", check_raw_thread},
      {"hitlist-mutation", check_hitlist_mutation},
      {"materialized-span", check_materialized_span},
      {"layering", check_layering},
      {"unordered-iteration", check_unordered_iteration},
      {"lock-discipline", check_lock_discipline},
      {"raw-socket", check_raw_socket},
  };
  return kRules;
}

const std::vector<std::string>& all_rule_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Rule& r : all_rules()) names.emplace_back(r.name);
    names.emplace_back(kUnusedSuppressionRule);
    return names;
  }();
  return kNames;
}

}  // namespace v6lint
