#pragma once
// v6lint rule framework. Every rule consumes the shared per-file index
// built by the lexer pass (lexer.h) and, for the project-scoped rules
// (layering, unordered-iteration), the cross-file ProjectIndex built
// from the include-graph pass (include_graph.h). Rules never re-strip
// text or re-read files.

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "include_graph.h"
#include "lexer.h"

namespace v6lint {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct IncludeRef {
  std::size_t line = 0;  // 1-based
  std::string target;    // as written: "fault/fault_plan.h"
};

/// Everything the rule passes know about one file, computed once.
struct FileIndex {
  std::filesystem::path path;
  std::string file;     // printable path (as given on the command line)
  std::string generic;  // forward-slash path for suffix matching
  std::string module;   // src/ module ("" outside src/<module>/)
  bool in_src = false;
  bool is_header = false;
  LexedFile lx;
  std::vector<IncludeRef> includes;  // quoted includes only
  /// Identifiers declared in this file with std::unordered_{map,set}
  /// type (locals, members, parameters) — hash-ordered containers whose
  /// iteration order is not a function of the master seed.
  std::vector<std::string> unordered_names;
};

/// Cross-file state shared by the project-scoped rules.
struct ProjectIndex {
  /// src-relative path ("probe/scanner.h") -> index into `files`.
  std::map<std::string, std::size_t> by_src_relative;
  std::vector<FileIndex>* files = nullptr;
  const LayerSpec* layers = nullptr;
};

/// Populates FileIndex::includes and FileIndex::unordered_names from
/// the lexed views (the non-lexer half of the indexing pass).
void index_file(FileIndex& fi);

struct RuleContext {
  const FileIndex& file;
  const ProjectIndex& project;
};

using RuleFn = void (*)(const RuleContext&, std::vector<Violation>&);

struct Rule {
  const char* name;
  RuleFn fn;
};

/// All registered rules, in reporting order. `unused-suppression` is
/// driver-side (it needs the post-suppression violation set) and is not
/// in this table; kAllRuleNames includes it.
const std::vector<Rule>& all_rules();
const std::vector<std::string>& all_rule_names();

inline const char* kUnusedSuppressionRule = "unused-suppression";

}  // namespace v6lint
