// Lint fixture: calls to the retired sweep spellings (the
// `deprecated-api` rule) — the deleted PR 2 positional wrappers and
// the run_sweep(SweepSpec) forwarder the ScanSession builder replaced.
// Never compiled.
namespace v6::fixture {

void sweep_with_positional_api() {
  run_all_tgas(universe, seeds, alias_list, config, /*jobs=*/4);  // violation
  run_tgas(universe, kinds, seeds, alias_list, config);           // violation
}

void sweep_with_spec_struct() {
  const auto runs = run_sweep(spec);  // violation: use ScanSession
}

void scan_with_out_param() {
  ScanStats stats;
  scanner.scan_hits(targets, type, &stats);  // violation: 3-arg overload
}

}  // namespace v6::fixture
