// Lint fixture: calls to the [[deprecated]] PR 2 spellings (the
// `deprecated-api` rule). Never compiled.
namespace v6::fixture {

void sweep_with_positional_api() {
  run_all_tgas(universe, seeds, alias_list, config, /*jobs=*/4);  // violation
  run_tgas(universe, kinds, seeds, alias_list, config);           // violation
}

void scan_with_out_param() {
  ScanStats stats;
  scanner.scan_hits(targets, type, &stats);  // violation: 3-arg overload
}

}  // namespace v6::fixture
