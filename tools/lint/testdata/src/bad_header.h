// Lint fixture: a header missing `#pragma once` (the `pragma-once`
// rule). Never compiled.
#include <cstdint>

namespace v6::fixture {
inline std::uint32_t unguarded_header_constant() { return 7; }
}  // namespace v6::fixture
