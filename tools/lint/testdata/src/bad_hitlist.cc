// Lint fixture: HitlistStore epoch mutation outside src/service/ (the
// `hitlist-mutation` rule). Library code reads snapshots; only the
// service refresh loop publishes. Never compiled.
namespace v6::fixture {

void grow_the_hitlist_from_outside(HitlistStore& store) {
  auto builder = store.begin_epoch();  // violation
  builder.add(addr);
  store.publish_epoch(std::move(builder));  // violation
}

}  // namespace v6::fixture
