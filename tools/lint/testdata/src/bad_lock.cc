// Lint fixture: seeded `lock-discipline` violations — bare
// .lock()/.unlock() on a mutex outside src/runtime/. An early return
// or exception between the pair leaks a held lock; library code holds
// mutexes through RAII guards only. Never compiled — scanned by
// lint_selftest / lint_fixture_fails.
#include <mutex>

namespace v6::fixture {

std::mutex mu;
int counter = 0;

int manual_lock_pair(bool fail_early) {
  mu.lock();  // violation: bare lock outside src/runtime/
  if (fail_early) return -1;  // ... and this path leaks the mutex
  const int v = ++counter;
  mu.unlock();  // violation: bare unlock outside src/runtime/
  return v;
}

}  // namespace v6::fixture
