// Lint fixture: metric/span name literals outside the [a-z0-9_.<>:]
// charset (the `metric-name` rule). Never compiled.
namespace v6::fixture {

struct Counter {
  void add(unsigned long long n);
};
struct Registry {
  Counter& counter(const char* name);
  Counter& histogram(const char* name);
};
struct Telemetry;
struct Span {
  Span(Telemetry* telemetry, const char* name);
};

void record_batch(Registry& registry, Telemetry* telemetry) {
  // Uppercase and spaces: violation.
  registry.counter("Scanner Packets").add(1);
  // Hyphens are not in the charset either: violation.
  registry.histogram("scanner/batch-size").add(1);
  // A well-formed name next to a bad span literal: only the span fires.
  registry.counter("scanner.packets").add(1);
  Span span(telemetry, "Pipeline Run!");
}

}  // namespace v6::fixture
