// Lint fixture: seeded violations for the `nondeterminism` rule. Never
// compiled — scanned by the lint_selftest / lint_fixture_fails ctests.
#include <cstdlib>
#include <ctime>
#include <random>

namespace v6::fixture {

int ambient_entropy() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // two violations
  std::random_device entropy;                             // violation
  return std::rand() + static_cast<int>(entropy());       // violation
}

double wall_clock_seed() {
  // system_clock reads leak the host's clock into results: violation.
  return static_cast<double>(
      std::chrono::system_clock::now().time_since_epoch().count());
}

}  // namespace v6::fixture
