// Lint fixture: seeded violations for the `no-sleep` rule. Never
// compiled — scanned by the lint_selftest / lint_fixture_fails ctests.
#include <chrono>
#include <thread>
#include <unistd.h>

namespace v6::fixture {

bool probe_once();

// The classic mistake this rule exists for: a retry loop that blocks
// the host thread instead of charging the scan's virtual clock.
bool probe_with_naive_backoff(int retries) {
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (probe_once()) return true;
    std::this_thread::sleep_for(                       // violation
        std::chrono::milliseconds(100 << attempt));
  }
  return false;
}

void other_wait_flavors() {
  std::this_thread::sleep_until(                       // violation
      std::chrono::steady_clock::now() + std::chrono::seconds(1));
  usleep(1000);                                        // violation
  sleep(1);                                            // violation
}

}  // namespace v6::fixture
