// Lint fixture: seeded violations for the `raw-socket` rule. Never
// compiled — scanned by the lint_selftest / lint_raw_socket_fails
// ctests. The library's network is the simulation; socket headers are
// allowed only under src/obs/admin/ (the introspection endpoint).
#include <arpa/inet.h>   // violation
#include <netinet/in.h>  // violation
#include <poll.h>        // violation
#include <sys/socket.h>  // violation

namespace v6::fixture {

// The mistake this rule exists for: a "quick" real probe path wired
// into the deterministic core, coupling scan outcomes to the host
// network stack.
int open_real_probe_socket() {
  return socket(AF_INET6, SOCK_DGRAM, 0);
}

}  // namespace v6::fixture
