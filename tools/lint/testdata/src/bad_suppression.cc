// Lint fixture: seeded `unused-suppression` violation — an inline
// allow that suppresses nothing. Stale allows rot into silent holes in
// the rule set, so v6lint makes them failures in their own right.
// Never compiled — scanned by lint_selftest / lint_fixture_fails.

namespace v6::fixture {

// v6lint: allow(no-sleep)  <- violation: nothing on this line or the
// next triggers no-sleep, so the suppression is stale.
int perfectly_sleepless() { return 42; }

}  // namespace v6::fixture
