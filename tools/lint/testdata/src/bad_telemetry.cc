// Lint fixture: an unguarded Telemetry* dereference (the
// `telemetry-null-guard` rule). Never compiled.
namespace v6::fixture {

struct Registry {
  void inc();
};
struct Telemetry {
  Registry& registry();
};
struct Config {
  Telemetry* telemetry = nullptr;
};

void record_batch(const Config& config) {
  // No null check anywhere nearby: violation.
  config.telemetry->registry().inc();
}

}  // namespace v6::fixture
