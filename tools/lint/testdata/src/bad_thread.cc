// Seeded violation fixture for the raw-thread rule: a bare std::thread
// in library code outside src/runtime/. The selftest requires v6lint to
// flag this file; tree scans skip testdata/.
#include <thread>

void bad_thread_spawn() {
  std::thread worker([] {});
  worker.join();
}
