// Lint fixture: seeded `unordered-iteration` violations — loops whose
// visit order is libstdc++ hash order, not a function of the master
// seed. Exactly the shape that silently breaks bit-identical scan
// output. Never compiled — scanned by lint_selftest /
// lint_fixture_fails.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace v6::fixture {

std::uint64_t emit(std::uint64_t addr);

void emit_in_hash_order(const std::vector<std::uint64_t>& seeds) {
  std::unordered_map<std::uint64_t, std::uint32_t> hits;
  for (const std::uint64_t s : seeds) ++hits[s];  // fine: vector order

  for (const auto& [addr, count] : hits) {  // violation: hash order
    emit(addr);
  }
}

void iterator_loop_in_hash_order(const std::unordered_set<std::uint64_t>& s) {
  for (auto it = s.begin(); it != s.end(); ++it) {  // violation: hash order
    emit(*it);
  }
}

}  // namespace v6::fixture
