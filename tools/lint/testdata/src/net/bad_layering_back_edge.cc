// Lint fixture: the other half of the seeded layering pair — a
// back-edge from a foundation module (net) into the service layer at
// the top of the DAG. Any such edge would make the architecture
// cyclic; the layering pass must reject it.
// Never compiled — scanned by lint_selftest / lint_fixture_fails.
#include "service/hitlist_store.h"  // violation: edge net -> service
#include "check/contracts.h"        // fine: net -> check is declared

namespace v6::fixture {

int foundation_calling_upward() { return 0; }

}  // namespace v6::fixture
