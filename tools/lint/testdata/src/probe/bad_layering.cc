// Lint fixture: seeded `layering` violation — a src/probe file reaching
// into src/fault. The declared DAG in tools/lint/layers.txt has no
// probe -> fault edge (the fault plane wraps probe's transport from
// above; the scanner must never know which faults are injected), so
// this include must fail lint_tree with a report naming the edge.
// Never compiled — scanned by lint_selftest / lint_fixture_fails.
#include "fault/fault_plan.h"  // violation: edge probe -> fault
#include "net/ipv6.h"          // fine: probe -> net is declared

namespace v6::fixture {

int probe_peeking_at_faults() { return 0; }

}  // namespace v6::fixture
