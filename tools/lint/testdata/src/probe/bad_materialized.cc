// Lint fixture: materialized host-table access outside src/simnet/ (the
// `materialized-span` rule). The hosts() span exists only for the
// procedural-vs-materialized differential tests; library code walking
// it reintroduces O(hosts) memory and aborts on procedural builds.
// Never compiled.
namespace v6::fixture {

std::size_t count_by_scanning_the_table(const Universe& universe) {
  std::size_t n = 0;
  for (const auto& host : universe.hosts()) {  // violation
    if (host.services != 0) ++n;
  }
  return n;
}

}  // namespace v6::fixture
