# End-to-end smoke for the trace/report pipeline (the `report_roundtrip`
# ctest, label `report`; also run by tools/check.sh --quick):
#
#   1. run a tiny 3-TGA sweep with --trace (and --trace-chrome),
#   2. feed the trace to `sos report --json`,
#   3. assert the summary parses superficially and carries non-empty
#      per-TGA phases, wire rows, and quantiles.
#
# The deep validation (strict JSON parsing, schema fields, Chrome trace
# structure) lives in report_test; this script proves the *shipped
# binary* wires the same pieces together.
#
# Usage: cmake -DSOS_BIN=<path> -DWORK_DIR=<dir> -P report_smoke.cmake
if(NOT DEFINED SOS_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "usage: cmake -DSOS_BIN=<path> -DWORK_DIR=<dir> "
          "-P report_smoke.cmake")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(trace ${WORK_DIR}/report_smoke.jsonl)
set(chrome ${WORK_DIR}/report_smoke_chrome.json)

execute_process(
  COMMAND ${SOS_BIN} survey --tgas 6Tree,DET,6Scan --budget 6000
          --ases 150 --trace ${trace} --trace-chrome ${chrome}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sos survey exited with '${rc}'\n"
                      "stdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT EXISTS ${trace})
  message(FATAL_ERROR "sos survey did not write ${trace}")
endif()
if(NOT EXISTS ${chrome})
  message(FATAL_ERROR "sos survey did not write ${chrome}")
endif()

execute_process(
  COMMAND ${SOS_BIN} report ${trace} --json
  OUTPUT_VARIABLE json ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sos report exited with '${rc}'\nstderr:\n${err}")
endif()

# Superficial JSON checks: one object, the schema's top-level keys, and
# per-TGA phase content for every TGA the sweep ran.
if(NOT json MATCHES "^\\{\"events\":[1-9]")
  message(FATAL_ERROR "report JSON missing a nonzero event count:\n${json}")
endif()
foreach(key tgas wire quantiles slowest virtual_end)
  if(NOT json MATCHES "\"${key}\":")
    message(FATAL_ERROR "report JSON missing key '${key}':\n${json}")
  endif()
endforeach()
foreach(tga 6Tree DET 6Scan)
  if(NOT json MATCHES "\"${tga}\":\\{\"")
    message(FATAL_ERROR "report JSON has no phases for TGA '${tga}':\n${json}")
  endif()
endforeach()
if(json MATCHES "\"tgas\":\\{\\}")
  message(FATAL_ERROR "report JSON phases are empty:\n${json}")
endif()
if(NOT json MATCHES "\"wire\":\\[\\{\"type\"")
  message(FATAL_ERROR "report JSON wire accounting is empty:\n${json}")
endif()

message(STATUS "report round-trip ok (${trace})")
