// sos — command-line driver for the Seeds of Scanning reproduction.
//
//   sos universe [--seed N] [--ases N] [--scale F]
//       Print a summary of the simulated Internet.
//   sos sources [--seed N]
//       Collect the 12 seed feeds and print their composition.
//   sos run --tga NAME [--port P] [--dataset D] [--budget N] [--seed N]
//       Run one TGA through the scan pipeline.
//       datasets: full, offline, online, joint, active (default),
//                 port (the port-specific dataset of --port)
//   sos survey [--port P] [--budget N] [--seed N] [--jobs N]
//              [--combined any] [--tgas A,B,...]
//       Run all eight TGAs (or the --tgas subset) and print the
//       comparison table. With --combined, generate from all TGAs and
//       scan the union once (the paper's probing methodology, minimizing
//       per-address scans).
//   sos report FILE [--json] [--top N]
//       Analyze a --trace JSONL file offline: per-TGA phase tables, wire
//       accounting, histogram quantiles, top-N slowest spans. --json
//       prints the machine-readable summary instead.
//
//   run and survey additionally accept (docs/OBSERVABILITY.md):
//     --trace FILE   write a JSON-lines event trace (spans, per-probe
//                    events, final metric totals) to FILE
//     --trace-chrome FILE
//                    write a chrome://tracing / Perfetto JSON trace
//     --stats        print the counter/phase/distribution tables on exit
//   and the fault/robustness knobs (docs/ROBUSTNESS.md):
//     --faults SPEC  inject network faults; SPEC is comma-separated
//                    loss=P | loss=PFX:P | rlimit=PFX:RATE[:BURST[:LEN]]
//                    | outage=PFX:START:DUR[:PERIOD] | error=PFX:P
//                    | pps=RATE, with PFX a CIDR prefix or `any`
//     --retries N    scanner retransmissions after a timeout
//     --timeout S    virtual seconds to wait per unanswered probe
//     --backoff S    base retry backoff (doubles per retry)
//     --jitter F     fractional jitter on backoff waits
//     --adaptive N   consecutive-timeout threshold for per-prefix
//                    cool-downs (use with --cooldown S)
//     --cooldown S   adaptive cool-down wait in virtual seconds
//   and the scan-engine selector (docs/SCANNER.md):
//     --shards N     route scans through the streaming stateless engine
//                    with N shard workers (0, the default, keeps the
//                    batch engine)
//   sos serve [--cycles N] [--budget N] [--shards N] [--port P]
//             [--tgas A,B,...] [--interval N] [--streak N] [--floor F]
//             [--age 0|1] [--feed N] [--seed N]
//       Run the continuous hitlist service (docs/SERVICE.md): refresh
//       cycles against an aging universe, with per-cycle rescans,
//       bandit-allocated discovery budget, and one immutable hitlist
//       epoch published per cycle. --age 0 freezes the universe;
//       --feed N ingests fresh discoveries back into the generators as
//       seed deltas every N cycles (0 disables, default 1).
//   serve additionally speaks the live introspection plane
//   (docs/OBSERVABILITY.md "Live introspection"); any of these flags
//   activates telemetry and the in-memory flight recorder:
//     --admin-port P   loopback HTTP endpoint serving /metrics
//                      (Prometheus text exposition), /healthz, and
//                      /flight (recorder dump as trace JSONL); port 0
//                      picks an ephemeral port, printed on stderr
//     --status-file F  atomically rewrite F with the exposition document
//                      after every refresh cycle (scrape via the
//                      filesystem when no socket is wanted)
//     --watchdog S     start the stall watchdog with an S-second
//                      wall-clock deadline; a stalled stage dumps
//                      diagnostics and the flight recorder
//     --flight F       where watchdog trips and SIGTERM/SIGINT write the
//                      flight-recorder JSONL (parseable by `sos report`)
//   sos expo-check FILE
//       Validate a Prometheus exposition document (a /metrics scrape or
//       --status-file snapshot); prints family/sample counts.
//   sos trace ADDR [--seed N]
//       Simulated traceroute toward ADDR.
//   sos collect --source NAME [--out FILE] [--seed N]
//       Collect one seed feed; write addresses to FILE (or count them).
//   sos export --dataset D [--out FILE] [--port P] [--seed N]
//       Materialize a preprocessed seed dataset and write it to FILE.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>

#include "check/validate.h"
#include "obs/admin/admin_server.h"
#include "obs/expo.h"
#include "obs/flight_recorder.h"
#include "obs/watchdog.h"
#include "experiment/combined.h"
#include "experiment/pipeline.h"
#include "fault/fault_plan.h"
#include "experiment/session.h"
#include "io/address_file.h"
#include "io/csv.h"
#include "experiment/workbench.h"
#include "metrics/reporter.h"
#include "obs/chrome_trace.h"
#include "obs/quantiles.h"
#include "obs/sinks.h"
#include "obs/telemetry.h"
#include "obs/trace_analysis.h"
#include "obs/trace_reader.h"
#include "service/hitlist_service.h"
#include "simnet/universe_builder.h"
#include "tga/registry.h"
#include "topo/traceroute.h"

namespace {

using v6::metrics::fmt_count;

// Signal-to-flag relay for `sos serve`: the refresh loop checks the flag
// between cycles and exits cleanly (dumping the flight recorder) instead
// of dying mid-epoch. Installed only when the introspection plane is on.
volatile std::sig_atomic_t g_signal = 0;
void note_signal(int sig) { g_signal = sig; }

struct Args {
  std::string command;
  std::string positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--stats" || arg == "--json") {
      // Boolean flags: the generic branch below would swallow the next
      // argument as its value.
      args.options[std::string(arg.substr(2))] = "1";
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[std::string(arg.substr(2))] = argv[++i];
    } else if (args.positional.empty()) {
      args.positional = arg;
    }
  }
  return args;
}

v6::net::ProbeType parse_port(const std::string& text) {
  for (const v6::net::ProbeType t : v6::net::kAllProbeTypes) {
    if (v6::net::to_string(t) == text) return t;
  }
  std::cerr << "unknown port '" << text << "', using ICMP\n";
  return v6::net::ProbeType::kIcmp;
}

v6::experiment::WorkbenchConfig bench_config(
    const Args& args, v6::obs::Telemetry* telemetry = nullptr) {
  v6::experiment::WorkbenchConfig config;
  config.seed = args.get_u64("seed", 42);
  config.universe.seed = config.seed;
  config.universe.num_ases =
      static_cast<int>(args.get_u64("ases", 2000));
  config.universe.host_scale = args.get_double("scale", 0.12);
  return config.with_telemetry(telemetry);
}

std::string fmt_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::string fmt_compact(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

// Wires `--trace FILE` / `--trace-chrome FILE` / `--stats` into one
// Telemetry that the command threads through its workbench/pipeline
// configs. finish() emits the final metric totals into the trace,
// finalizes the Chrome trace document, and prints the --stats tables.
//
// `extra` tees one more sink behind the file sinks (serve's flight
// recorder); `force_telemetry` makes telemetry() non-null even with no
// observability flag, for the introspection plane's /metrics scrapes.
class ObsSession {
 public:
  explicit ObsSession(const Args& args, v6::obs::EventSink* extra = nullptr,
                      bool force_telemetry = false)
      : stats_(args.options.contains("stats")),
        force_(force_telemetry),
        extra_(extra),
        trace_path_(args.get("trace", "")),
        chrome_path_(args.get("trace-chrome", "")) {
    if (!trace_path_.empty()) {
      sink_.emplace(trace_path_);
      if (!sink_->ok()) {
        std::cerr << "warning: cannot open trace file '" << trace_path_
                  << "'; tracing disabled\n";
        sink_.reset();
      }
    }
    if (!chrome_path_.empty()) {
      chrome_.emplace(chrome_path_);
      if (!chrome_->ok()) {
        std::cerr << "warning: cannot open chrome trace file '"
                  << chrome_path_ << "'; tracing disabled\n";
        chrome_.reset();
      }
    }
    std::vector<v6::obs::EventSink*> sinks;
    if (sink_) sinks.push_back(&*sink_);
    if (chrome_) sinks.push_back(&*chrome_);
    if (extra_ != nullptr) sinks.push_back(extra_);
    if (sinks.size() == 1) {
      telemetry_.attach_sink(sinks.front());
    } else if (sinks.size() > 1) {
      for (v6::obs::EventSink* s : sinks) tee_.add(s);
      telemetry_.attach_sink(&tee_);
    }
  }

  /// nullptr when no observability flag was given: instrumented code
  /// paths stay on their zero-cost branch.
  v6::obs::Telemetry* telemetry() {
    return (force_ || stats_ || sink_ || chrome_ || extra_ != nullptr)
               ? &telemetry_
               : nullptr;
  }
  bool tracing() const {
    return sink_.has_value() || chrome_.has_value() || extra_ != nullptr;
  }

  void finish() {
    if (tracing()) telemetry_.emit_metrics();
    if (sink_) {
      sink_->flush();
      std::cerr << "wrote trace " << trace_path_ << "\n";
    }
    if (chrome_) {
      chrome_->close();
      std::cerr << "wrote chrome trace " << chrome_path_ << "\n";
    }
    if (!stats_) return;
    const v6::obs::Report report = telemetry_.registry().snapshot();
    if (!report.counters.empty() || !report.gauges.empty()) {
      v6::metrics::TextTable table({"Metric", "Value"});
      for (const auto& [name, value] : report.counters) {
        table.add_row({name, fmt_count(value)});
      }
      for (const auto& [name, value] : report.gauges) {
        table.add_row({name, std::to_string(value)});
      }
      std::cout << "\n-- counters --\n";
      table.print(std::cout);
    }
    if (!report.timers.empty()) {
      v6::metrics::TextTable table({"Phase", "Count", "Seconds", "Mean"});
      for (const auto& [name, total] : report.timers) {
        const double mean =
            total.count == 0 ? 0.0 : total.seconds() / double(total.count);
        table.add_row({name, fmt_count(total.count),
                       fmt_seconds(total.seconds()), fmt_compact(mean)});
      }
      std::cout << "\n-- phases --\n";
      table.print(std::cout);
    }
    if (!report.histograms.empty()) {
      v6::metrics::TextTable table(
          {"Metric", "Count", "Mean", "P50", "P90", "P99", "Max"});
      for (const auto& [name, total] : report.histograms) {
        const auto s = v6::obs::summarize(total);
        table.add_row({name, fmt_count(s.count), fmt_compact(s.mean),
                       fmt_compact(s.p50), fmt_compact(s.p90),
                       fmt_compact(s.p99), fmt_compact(s.max)});
      }
      std::cout << "\n-- distributions --\n";
      table.print(std::cout);
    }
  }

 private:
  bool stats_;
  bool force_;
  v6::obs::EventSink* extra_;
  std::string trace_path_;
  std::string chrome_path_;
  std::optional<v6::obs::JsonLinesSink> sink_;
  std::optional<v6::obs::ChromeTraceSink> chrome_;
  v6::obs::TeeSink tee_;
  v6::obs::Telemetry telemetry_;
};

/// Applies the fault/robustness flags to a pipeline config. The parsed
/// plan lives in `plan_storage` (must outlive the run). Returns false on
/// a malformed --faults spec.
bool apply_fault_options(const Args& args,
                         v6::experiment::PipelineConfig& config,
                         std::optional<v6::fault::FaultPlan>& plan_storage) {
  if (args.options.contains("faults")) {
    plan_storage = v6::fault::FaultPlan::parse(args.get("faults", ""));
    if (!plan_storage) {
      std::cerr << "error: malformed --faults spec '" << args.get("faults", "")
                << "'\n"
                   "  items: loss=P | loss=PFX:P | "
                   "rlimit=PFX:RATE[:BURST[:LEN]] |\n"
                   "         outage=PFX:START:DUR[:PERIOD] | error=PFX:P | "
                   "pps=RATE\n"
                   "  PFX is CIDR notation or `any`; probabilities in "
                   "[0,1]\n";
      return false;
    }
    config.faults = &*plan_storage;
  }
  config.scan_retries = static_cast<int>(
      args.get_u64("retries", static_cast<std::uint64_t>(config.scan_retries)));
  config.probe_timeout_s = args.get_double("timeout", config.probe_timeout_s);
  config.retry_backoff_s = args.get_double("backoff", config.retry_backoff_s);
  config.retry_jitter = args.get_double("jitter", config.retry_jitter);
  config.adaptive_threshold = static_cast<int>(args.get_u64(
      "adaptive", static_cast<std::uint64_t>(config.adaptive_threshold)));
  config.adaptive_backoff_s =
      args.get_double("cooldown", config.adaptive_backoff_s);
  return true;
}

const std::vector<v6::net::Ipv6Addr>& pick_dataset(
    v6::experiment::Workbench& bench, const std::string& name,
    v6::net::ProbeType port) {
  if (name == "full") return bench.full();
  if (name == "offline") {
    return bench.dealiased(v6::dealias::DealiasMode::kOffline);
  }
  if (name == "online") {
    return bench.dealiased(v6::dealias::DealiasMode::kOnline);
  }
  if (name == "joint") return bench.dealiased(v6::dealias::DealiasMode::kJoint);
  if (name == "port") return bench.port_specific(port);
  if (name != "active") {
    std::cerr << "unknown dataset '" << name << "', using active\n";
  }
  return bench.all_active();
}

int cmd_universe(const Args& args) {
  v6::experiment::Workbench bench(bench_config(args));
  const auto& universe = bench.universe();
  std::cout << "hosts:          " << fmt_count(universe.hosts().size())
            << "\n";
  std::cout << "ASes:           " << fmt_count(universe.asdb().size())
            << "\n";
  std::cout << "announcements:  " << fmt_count(universe.routes().size())
            << "\n";
  std::cout << "alias regions:  "
            << fmt_count(universe.alias_regions().size()) << "\n";
  for (const v6::net::ProbeType t : v6::net::kAllProbeTypes) {
    std::cout << "active on " << v6::net::to_string(t) << ": "
              << fmt_count(universe.active_host_count(t)) << "\n";
  }
  if (universe.dense_region()) {
    std::cout << "dense region:   " << universe.dense_region()->prefix.to_string()
              << " (AS" << universe.dense_region()->asn << ")\n";
  }
  return 0;
}

int cmd_sources(const Args& args) {
  v6::experiment::Workbench bench(bench_config(args));
  v6::metrics::TextTable table({"Source", "Collected", "Active", "ASes"});
  for (const v6::seeds::SeedSource source : v6::seeds::kAllSeedSources) {
    const auto addrs = bench.seeds().from_source(source);
    std::size_t active = 0;
    std::unordered_set<std::uint32_t> ases;
    for (const auto& addr : addrs) {
      if (bench.activity().active_any(addr)) ++active;
      if (const auto asn = bench.universe().asn_of(addr)) ases.insert(*asn);
    }
    table.add_row({std::string(v6::seeds::to_string(source)),
                   fmt_count(addrs.size()), fmt_count(active),
                   fmt_count(ases.size())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_run(const Args& args) {
  const std::string tga_name = args.get("tga", "6Tree");
  auto generator = v6::tga::make_generator(tga_name);
  if (generator == nullptr) {
    std::cerr << "unknown TGA '" << tga_name << "'\n";
    return 1;
  }
  ObsSession obs(args);
  v6::experiment::Workbench bench(bench_config(args, obs.telemetry()));
  std::optional<v6::fault::FaultPlan> plan;
  auto config =
      v6::experiment::PipelineConfig{}
          .with_type(parse_port(args.get("port", "ICMP")))
          .with_budget(args.get_u64("budget", 400'000))
          .with_seed(args.get_u64("seed", 42))
          .with_shards(static_cast<int>(args.get_u64("shards", 0)))
          .with_telemetry(obs.telemetry())
          .with_trace_probes(obs.tracing());
  if (!apply_fault_options(args, config, plan)) return 2;
  const auto& seeds =
      pick_dataset(bench, args.get("dataset", "active"), config.type);

  const auto outcome = v6::experiment::run_tga(
      bench.universe(), *generator, seeds, bench.alias_list(), config);
  std::cout << generator->name() << " on " << v6::net::to_string(config.type)
            << " (" << fmt_count(seeds.size()) << " seeds, budget "
            << fmt_count(config.budget) << ")\n";
  std::cout << "  hits:        " << fmt_count(outcome.hits()) << "\n";
  std::cout << "  active ASes: " << fmt_count(outcome.ases()) << "\n";
  std::cout << "  aliases:     " << fmt_count(outcome.aliases) << "\n";
  std::cout << "  dense-filtered: " << fmt_count(outcome.dense_filtered)
            << "\n";
  std::cout << "  packets:     " << fmt_count(outcome.packets) << "\n";
  obs.finish();
  return 0;
}

/// Parses a comma-separated `--tgas` list against the TGA registry.
/// Returns false (after printing the known names) on an unknown entry.
bool parse_tga_list(const std::string& text,
                    std::vector<v6::tga::TgaKind>* out) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string name = text.substr(pos, comma - pos);
    if (!name.empty()) {
      bool found = false;
      for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
        if (v6::tga::to_string(kind) == name) {
          out->push_back(kind);
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << "unknown TGA '" << name << "' in --tgas; known:";
        for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
          std::cerr << " " << v6::tga::to_string(kind);
        }
        std::cerr << "\n";
        return false;
      }
    }
    pos = comma + 1;
  }
  if (out->empty()) {
    std::cerr << "--tgas needs at least one TGA name\n";
    return false;
  }
  return true;
}

int cmd_survey(const Args& args) {
  ObsSession obs(args);
  v6::experiment::Workbench bench(bench_config(args, obs.telemetry()));
  const v6::net::ProbeType port = parse_port(args.get("port", "ICMP"));
  const std::uint64_t budget = args.get_u64("budget", 400'000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const auto& seeds = bench.all_active();

  v6::metrics::TextTable table({"TGA", "Hits", "ASes", "Aliases"});
  if (args.options.contains("combined")) {
    std::vector<std::unique_ptr<v6::tga::TargetGenerator>> owned;
    std::vector<v6::tga::TargetGenerator*> generators;
    for (const v6::tga::TgaKind kind : v6::tga::kAllTgas) {
      owned.push_back(v6::tga::make_generator(kind));
      generators.push_back(owned.back().get());
    }
    v6::experiment::CombinedConfig config;
    config.budget_per_generator = budget;
    config.type = port;
    config.seed = seed;
    config.telemetry = obs.telemetry();
    const auto result = v6::experiment::run_combined(
        bench.universe(), generators, seeds, bench.alias_list(), config);
    for (std::size_t g = 0; g < generators.size(); ++g) {
      const auto& outcome = result.per_generator[g];
      table.add_row({std::string(generators[g]->name()),
                     fmt_count(outcome.hits()), fmt_count(outcome.ases()),
                     fmt_count(outcome.aliases)});
    }
    table.print(std::cout);
    std::cout << "union: " << fmt_count(result.union_hits.size())
              << " hits in " << fmt_count(result.union_ases.size())
              << " ASes; scanned " << fmt_count(result.unique_scanned)
              << " unique of " << fmt_count(result.proposals)
              << " proposals (" << fmt_count(result.packets)
              << " packets)\n";
    obs.finish();
    return 0;
  }

  std::vector<v6::tga::TgaKind> kinds;  // empty = all eight
  if (args.options.contains("tgas") &&
      !parse_tga_list(args.get("tgas", ""), &kinds)) {
    return 2;
  }
  std::optional<v6::fault::FaultPlan> plan;
  auto config = v6::experiment::PipelineConfig{}
                    .with_type(port)
                    .with_budget(budget)
                    .with_seed(seed)
                    .with_shards(static_cast<int>(args.get_u64("shards", 0)))
                    .with_trace_probes(obs.tracing());
  if (!apply_fault_options(args, config, plan)) return 2;
  const auto runs =
      v6::experiment::ScanSession(bench.universe(), bench.alias_list())
          .with_seeds(seeds)
          .with_config(config)
          .with_kinds(kinds)
          .with_jobs(static_cast<unsigned>(args.get_u64("jobs", 1)))
          .with_telemetry(obs.telemetry())
          .sweep();
  for (const auto& run : runs) {
    table.add_row({std::string(v6::tga::to_string(run.kind)),
                   fmt_count(run.outcome.hits()),
                   fmt_count(run.outcome.ases()),
                   fmt_count(run.outcome.aliases)});
  }
  table.print(std::cout);
  obs.finish();
  return 0;
}

int cmd_serve(const Args& args) {
  // Any introspection-plane flag turns on telemetry and the in-memory
  // flight recorder, whether or not --stats/--trace were given.
  const bool plane = args.options.contains("admin-port") ||
                     args.options.contains("status-file") ||
                     args.options.contains("watchdog") ||
                     args.options.contains("flight");
  std::optional<v6::obs::FlightRecorder> recorder;
  if (plane) recorder.emplace();
  ObsSession obs(args, recorder ? &*recorder : nullptr, /*force_telemetry=*/plane);
  const v6::experiment::WorkbenchConfig wb = bench_config(args);
  v6::experiment::Workbench bench(wb);
  const v6::net::ProbeType port = parse_port(args.get("port", "ICMP"));
  std::vector<v6::tga::TgaKind> kinds;  // empty = full roster
  if (args.options.contains("tgas") &&
      !parse_tga_list(args.get("tgas", ""), &kinds)) {
    return 2;
  }

  // The service owns a universe it can age between cycles, built from
  // the same config as the workbench's, so the seed datasets line up
  // with cycle 1's world.
  v6::simnet::Universe universe =
      v6::simnet::UniverseBuilder::build(wb.universe);

  v6::service::ServiceConfig config;
  config.seed = args.get_u64("seed", 42);
  config.budget_per_cycle = args.get_u64("budget", 40'000);
  config.kinds = kinds;
  config.type = port;
  config.shards = static_cast<int>(args.get_u64("shards", 1));
  config.explore_floor = args.get_double("floor", 0.10);
  config.rescan.rescan_interval = args.get_u64("interval", 1);
  config.rescan.max_miss_streak =
      static_cast<int>(args.get_u64("streak", 3));
  config.telemetry = obs.telemetry();
  if (args.get_u64("age", 1) != 0) {
    config.age_universe = true;  // default churn model; --age 0 freezes
  }

  const std::string status_path = args.get("status-file", "");
  const std::string flight_path = args.get("flight", "");

  // Dumps the flight recorder as trace JSONL (the format `sos report`
  // parses) and resumes recording. Fired by watchdog trips and signals.
  const auto dump_flight = [&](const char* why) {
    if (!recorder || flight_path.empty()) return;
    std::ofstream out(flight_path);
    if (!out) {
      std::cerr << "warning: cannot open flight file '" << flight_path
                << "'\n";
      return;
    }
    recorder->dump_jsonl(out);
    recorder->thaw();
    std::cerr << "wrote flight recorder dump " << flight_path << " (" << why
              << ")\n";
  };

  std::optional<v6::obs::StallWatchdog> watchdog;
  if (plane) {
    v6::obs::StallWatchdog::Options wd;
    wd.deadline_seconds = args.get_double("watchdog", 30.0);
    wd.registry = &obs.telemetry()->registry();
    watchdog.emplace(wd);
    config.watchdog = &*watchdog;
    watchdog->on_stall([&](const v6::obs::StallWatchdog::StallReport& report) {
      std::cerr << report.to_text();
      dump_flight("watchdog trip");
    });
    // Heartbeats are threaded regardless; the monitor thread only runs
    // when the operator asked for a deadline.
    if (args.options.contains("watchdog")) watchdog->start();
    g_signal = 0;
    std::signal(SIGTERM, note_signal);
    std::signal(SIGINT, note_signal);
  }

  std::optional<v6::obs::admin::AdminServer> admin;
  if (args.options.contains("admin-port")) {
    v6::obs::admin::AdminServer::Options opts;
    opts.port = static_cast<int>(args.get_u64("admin-port", 0));
    admin.emplace(opts);
    v6::obs::Telemetry* const telemetry = obs.telemetry();
    admin->handle("/metrics", [telemetry] {
      return v6::obs::render_exposition(telemetry->registry().snapshot());
    });
    admin->handle("/healthz", [&watchdog] {
      return std::string(watchdog && watchdog->tripped() ? "stalled\n"
                                                         : "ok\n");
    });
    admin->handle("/flight", [&recorder] {
      std::ostringstream out;
      recorder->dump_jsonl(out);
      recorder->thaw();
      return out.str();
    });
    std::string error;
    if (!admin->start(&error)) {
      std::cerr << "error: admin endpoint: " << error << "\n";
      return 2;
    }
    std::cerr << "admin endpoint on http://127.0.0.1:" << admin->port()
              << " (/metrics /healthz /flight)\n";
  }

  try {
    const std::vector<v6::net::Ipv6Addr> seeds = bench.all_active();
    v6::service::HitlistService service(universe, seeds, config);
    const std::uint64_t cycles = args.get_u64("cycles", 5);
    const std::uint64_t feed = args.get_u64("feed", 1);
    v6::metrics::TextTable table({"Cycle", "Version", "Hitlist", "+Disc",
                                  "Rescans", "Evicted", "Probes", "Wire s"});
    v6::service::ServiceStats previous;
    // Discoveries already handed back to the generators as seeds; starts
    // as the initial seed set so only genuinely new addresses feed back.
    std::unordered_set<v6::net::Ipv6Addr, v6::net::Ipv6AddrHash> fed(
        seeds.begin(), seeds.end());
    for (std::uint64_t c = 0; c < cycles; ++c) {
      const v6::service::HitlistEpoch& epoch = service.refresh_once();
      if (feed != 0 && (c + 1) % feed == 0) {
        v6::service::SeedDelta delta;
        for (const v6::net::Ipv6Addr& addr : epoch.addrs) {
          if (fed.insert(addr).second) delta.added.push_back(addr);
        }
        service.ingest_seeds(delta);
      }
      const v6::service::ServiceStats now = service.stats();
      table.add_row({fmt_count(now.cycles), fmt_count(epoch.version),
                     fmt_count(epoch.size()),
                     fmt_count(now.discovered - previous.discovered),
                     fmt_count(now.rescans - previous.rescans),
                     fmt_count(now.evicted - previous.evicted),
                     fmt_count(now.probes - previous.probes),
                     fmt_seconds(now.virtual_seconds -
                                 previous.virtual_seconds)});
      previous = now;
      if (!status_path.empty()) {
        if (!v6::obs::write_file_atomic(
                status_path, v6::obs::render_exposition(
                                 obs.telemetry()->registry().snapshot()))) {
          std::cerr << "warning: cannot write status file '" << status_path
                    << "'\n";
        }
      }
      if (g_signal != 0) {
        std::cerr << "caught signal " << static_cast<int>(g_signal)
                  << "; stopping after cycle " << fmt_count(now.cycles)
                  << "\n";
        dump_flight("signal");
        break;
      }
    }
    table.print(std::cout);
    const v6::service::ServiceStats total = service.stats();
    std::cout << "published " << fmt_count(service.store().epoch_count() - 1)
              << " epochs; " << fmt_count(total.probes) << " probes, "
              << fmt_count(total.discovered) << " discovered, "
              << fmt_count(total.evicted) << " evicted; seed deltas: "
              << fmt_count(total.incremental_updates) << " incremental, "
              << fmt_count(total.full_rebuilds) << " full rebuilds\n";
  } catch (const v6::check::ConfigError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  obs.finish();
  return 0;
}

int cmd_collect(const Args& args) {
  const std::string source_name = args.get("source", "");
  std::optional<v6::seeds::SeedSource> source;
  for (const v6::seeds::SeedSource s : v6::seeds::kAllSeedSources) {
    if (v6::seeds::to_string(s) == source_name) source = s;
  }
  if (!source) {
    std::cerr << "usage: sos collect --source <name> [--out file]\n"
                 "sources:";
    for (const v6::seeds::SeedSource s : v6::seeds::kAllSeedSources) {
      std::cerr << " '" << v6::seeds::to_string(s) << "'";
    }
    std::cerr << "\n";
    return 1;
  }
  v6::experiment::Workbench bench(bench_config(args));
  v6::seeds::SeedCollector collector(bench.universe(),
                                     args.get_u64("seed", 42));
  const auto addrs = collector.collect(*source);
  std::cout << v6::seeds::to_string(*source) << ": "
            << fmt_count(addrs.size()) << " addresses\n";
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    v6::io::write_address_file(out, addrs);
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

int cmd_export(const Args& args) {
  v6::experiment::Workbench bench(bench_config(args));
  const v6::net::ProbeType port = parse_port(args.get("port", "ICMP"));
  const auto& seeds =
      pick_dataset(bench, args.get("dataset", "active"), port);
  std::cout << args.get("dataset", "active") << " dataset: "
            << fmt_count(seeds.size()) << " addresses\n";
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    v6::io::write_address_file(out, seeds);
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

int cmd_report(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: sos report <trace.jsonl> [--json] [--top N]\n";
    return 1;
  }
  std::ifstream in(args.positional);
  if (!in) {
    std::cerr << "cannot open trace file '" << args.positional << "'\n";
    return 1;
  }
  std::vector<v6::obs::Event> events;
  const auto load = v6::obs::load_trace(in, &events);
  const auto summary = v6::obs::analyze_trace(
      events, static_cast<std::size_t>(args.get_u64("top", 10)));
  if (args.options.contains("json")) {
    std::cout << v6::obs::report_json(summary) << "\n";
    return 0;
  }
  std::cout << args.positional << ": " << fmt_count(summary.events)
            << " events (" << fmt_count(load.bad_lines) << " malformed, "
            << fmt_count(load.truncated) << " truncated lines), "
            << fmt_count(summary.probes) << " probes, "
            << fmt_count(summary.samples) << " samples, virtual end "
            << fmt_seconds(summary.virtual_end) << " s\n";
  if (!summary.tga_phases.empty()) {
    v6::metrics::TextTable table({"TGA", "Phase", "Count", "Seconds"});
    for (const auto& [tga, phases] : summary.tga_phases) {
      for (const auto& [phase, total] : phases) {
        table.add_row({tga.empty() ? "-" : tga, phase, fmt_count(total.count),
                       fmt_seconds(total.seconds())});
      }
    }
    std::cout << "\n-- phases --\n";
    table.print(std::cout);
  }
  if (!summary.wire.empty()) {
    v6::metrics::TextTable table(
        {"Type", "Packets", "Replies", "Timeouts", "Charged", "WireSeconds"});
    for (const auto& row : summary.wire) {
      table.add_row({row.type, fmt_count(row.packets), fmt_count(row.replies),
                     fmt_count(row.timeouts), fmt_count(row.charged),
                     fmt_seconds(row.wire_seconds)});
    }
    std::cout << "\n-- wire --\n";
    table.print(std::cout);
  }
  if (!summary.histograms.empty()) {
    v6::metrics::TextTable table(
        {"Metric", "Count", "Mean", "P50", "P90", "P99", "Max"});
    for (const auto& [name, total] : summary.histograms) {
      const auto s = v6::obs::summarize(total);
      table.add_row({name, fmt_count(s.count), fmt_compact(s.mean),
                     fmt_compact(s.p50), fmt_compact(s.p90),
                     fmt_compact(s.p99), fmt_compact(s.max)});
    }
    std::cout << "\n-- distributions --\n";
    table.print(std::cout);
  }
  if (!summary.slowest.empty()) {
    v6::metrics::TextTable table({"Span", "Start", "Duration"});
    for (const auto& span : summary.slowest) {
      table.add_row({span.path, fmt_seconds(span.at),
                     fmt_seconds(span.seconds)});
    }
    std::cout << "\n-- slowest spans --\n";
    table.print(std::cout);
  }
  return 0;
}

int cmd_expo_check(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: sos expo-check <metrics.txt>\n";
    return 1;
  }
  std::ifstream in(args.positional);
  if (!in) {
    std::cerr << "cannot open exposition file '" << args.positional << "'\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  v6::obs::ExpoDoc doc;
  std::string error;
  if (!v6::obs::parse_exposition(buffer.str(), &doc, &error)) {
    std::cerr << args.positional << ": " << error << "\n";
    return 1;
  }
  std::cout << args.positional << ": " << fmt_count(doc.families.size())
            << " families, " << fmt_count(doc.samples.size())
            << " samples\n";
  return 0;
}

int cmd_trace(const Args& args) {
  const auto target = v6::net::Ipv6Addr::parse(args.positional);
  if (!target) {
    std::cerr << "usage: sos trace <ipv6-address>\n";
    return 1;
  }
  v6::experiment::Workbench bench(bench_config(args));
  v6::topo::TracerouteEngine engine(bench.universe(),
                                    args.get_u64("seed", 42));
  const auto path = engine.trace(*target, {});
  if (path.empty()) {
    std::cout << "no route toward " << target->to_string() << "\n";
    return 0;
  }
  for (const auto& hop : path) {
    std::cout << hop.ttl << "  "
              << (hop.responded ? hop.addr.to_string() : "*") << "  AS"
              << hop.asn;
    if (const auto* info = bench.universe().asdb().find(hop.asn)) {
      std::cout << " (" << info->name << ")";
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "universe") return cmd_universe(args);
  if (args.command == "sources") return cmd_sources(args);
  if (args.command == "run") return cmd_run(args);
  if (args.command == "survey") return cmd_survey(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "report") return cmd_report(args);
  if (args.command == "expo-check") return cmd_expo_check(args);
  if (args.command == "trace") return cmd_trace(args);
  if (args.command == "collect") return cmd_collect(args);
  if (args.command == "export") return cmd_export(args);
  std::cerr << "usage: sos "
               "<universe|sources|run|survey|serve|report|expo-check|trace|"
               "collect|export> [options]\n"
               "  sos run --tga DET --port TCP80 --dataset port --budget "
               "200000\n"
               "  sos serve --cycles 5 --budget 40000 --shards 2\n";
  return args.command.empty() ? 1 : 2;
}
